//! Globally optimal overload routing (fractional LP).
//!
//! The paper (§5.2): *"The globally optimal is computed by solving an
//! optimization problem that minimizes the maximum increase in link load.
//! For computational tractability, we allow flows to be fractionally
//! divided among interconnections; thus, the quality of this routing is an
//! upper bound on the global optimal without fractional routing."*
//!
//! Formulation, with `x[f][i]` the fraction of impacted flow `f` routed
//! via interconnection `i`:
//!
//! ```text
//! minimize t
//! s.t. Σ_i x[f][i] = 1                          for every impacted flow f
//!      residual(l) + Σ_f Σ_i vol_f · x[f][i] · [l ∈ path(f,i)]
//!                    <= t · capacity(l)          for every link l (both ISPs)
//!      x >= 0
//! ```
//!
//! `residual(l)` is the load from flows *not* on the negotiation table
//! (they stay on their default paths). The optimum `t` is the fractional
//! MEL across both ISPs treated as one system.
//!
//! # Incremental sessions and warm starts
//!
//! [`BandwidthLp`] is the per-pair session the failure sweeps use: it
//! builds each scenario's constraint skeleton **once** and re-solves it
//! through a retained [`nexit_lp::SimplexWorkspace`], so every re-solve
//! after the first warm-starts from the previous optimal basis instead
//! of cold-starting the two-phase simplex. Two patch shapes re-enter
//! warm:
//!
//! * **rhs-only** — scaled background traffic
//!   ([`BandwidthLp::solve_failure_scaled`]) changes only the capacity
//!   rows' residual rhs, which the workspace's dual-simplex re-entry
//!   repairs in a handful of pivots;
//! * **coefficient patches** — a different capacity model
//!   ([`BandwidthLp::solve_with_model`]) rewrites the `-capacity`
//!   column, and a different workload model
//!   ([`BandwidthLp::update_scenario`]) rewrites the volume
//!   coefficients; both keep the skeleton's sparsity pattern, so the
//!   workspace refreshes the changed columns against its retained basis
//!   factorization and skips phase 1 entirely.
//!
//! A note on scope, from measurement: *different* failure scenarios of a
//! pair do **not** share enough structure to warm-start across — their
//! impacted-flow sets are disjoint (a flow is impacted by exactly the
//! failure of its default interconnection) and often wildly imbalanced,
//! so a shared union-of-scenarios program is several times larger than
//! the per-scenario programs and loses far more to its size than basis
//! reuse recovers. The session therefore keeps one compact skeleton and
//! one workspace *per scenario* — the first solve of each is bit-identical
//! to the standalone [`optimal_bandwidth`] (same construction, same cold
//! path) and warm starts pay off across each scenario's re-solves.

use nexit_core::GainTable;
use nexit_lp::{ConstraintOp, LpOutcome, LpProblem, SimplexOptions, SimplexWorkspace, WarmStats};
use nexit_routing::{Assignment, FlowId, PairFlows};
use nexit_topology::{IcxId, PairView};
use nexit_workload::{LinkLoads, PathTable};

/// Result of the fractional optimum.
#[derive(Debug, Clone)]
pub struct BandwidthOptimum {
    /// The optimal objective: the minimal achievable maximum
    /// load-to-capacity ratio across both ISPs.
    pub t: f64,
    /// `fractions.get(j, i)` = fraction of impacted flow `j` (in input
    /// order) routed via interconnection `i`. Flat `impacted × k` table
    /// (same layout as the negotiation core's gain tables).
    pub fractions: GainTable,
    /// Link loads under the fractional optimum (including residual).
    pub loads: LinkLoads,
}

impl BandwidthOptimum {
    /// MEL of one side under the optimum. `up_capacities` /
    /// `down_capacities` as used in the solve.
    pub fn side_mel(&self, capacities: &[f64], upstream: bool) -> f64 {
        let loads = if upstream {
            &self.loads.up
        } else {
            &self.loads.down
        };
        nexit_metrics::mel(loads, capacities)
    }
}

/// Failure modes of the optimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimalBandwidthError {
    /// The LP solver hit its iteration cap (pathological input).
    SolverLimit {
        /// Pivots the solver actually consumed before giving up.
        iterations: usize,
    },
    /// The LP was reported infeasible or unbounded — impossible for this
    /// formulation (`x = default split, t large` is always feasible), so
    /// it indicates a numerical failure worth surfacing.
    Numerical(&'static str),
}

impl std::fmt::Display for OptimalBandwidthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimalBandwidthError::SolverLimit { iterations } => {
                write!(f, "simplex iteration cap reached after {iterations} pivots")
            }
            OptimalBandwidthError::Numerical(what) => {
                write!(f, "LP reported {what} for a trivially feasible program")
            }
        }
    }
}

impl std::error::Error for OptimalBandwidthError {}

/// Shared solver options: the failure-sweep programs occasionally need
/// more pivots than the default cap.
fn solver_options() -> SimplexOptions {
    SimplexOptions {
        max_iterations: 500_000,
        ..SimplexOptions::default()
    }
}

/// The LP variable index of the objective `t` (max load-to-capacity
/// ratio); every capacity row carries `-capacity` in this column.
const T_VAR: usize = 0;

/// One scenario's built program: the patchable LP, its retained capacity
/// rows, and the residual loads for reconstructing the optimum's link
/// loads.
struct Program {
    problem: LpProblem,
    /// The retained capacity rows; see [`CapRow`].
    cap_rows: Vec<CapRow>,
    /// Residual loads (non-impacted flows on their defaults), unscaled.
    residual: LinkLoads,
}

/// One retained capacity row of a scenario's program: enough to re-point
/// the row at a scaled background load (rhs patch —
/// [`BandwidthLp::solve_failure_scaled`]) or at a different capacity
/// model (`t`-coefficient patch — [`BandwidthLp::solve_with_model`])
/// without rebuilding the skeleton.
struct CapRow {
    /// Constraint row index in the problem.
    row: usize,
    /// Unscaled residual load on the link; re-solving at
    /// `residual_scale = s` sets the row's rhs to `-residual * s`.
    residual: f64,
    /// Whether the link belongs to the upstream ISP.
    upstream: bool,
    /// Link index within its side's capacity vector.
    link: usize,
}

/// Build one scenario's program. Variable 0 is `t`; `x[j][i]` follows in
/// row-major order; flow-conservation rows come first, then one capacity
/// row per link carrying impacted or residual load.
fn build_program(
    view: &PairView<'_>,
    paths: &PathTable,
    flows: &PairFlows,
    impacted: &[FlowId],
    default_assignment: &Assignment,
    up_capacities: &[f64],
    down_capacities: &[f64],
) -> Program {
    let k = view.num_interconnections();
    let num_up = view.a.num_links();

    // Residual loads from non-impacted flows.
    let mut residual = LinkLoads::zero(view);
    let impacted_set: std::collections::HashSet<FlowId> = impacted.iter().copied().collect();
    for (fid, flow, _) in flows.iter() {
        if !impacted_set.contains(&fid) {
            residual.add_flow(paths, fid, default_assignment.choice(fid), flow.volume);
        }
    }

    // Build the LP. Variable 0 is t; x[j][i] follows in row-major order.
    let mut lp = LpProblem::new();
    let t_var = lp.add_variable(1.0);
    debug_assert_eq!(t_var, T_VAR);
    let x_var = |j: usize, i: usize| 1 + j * k + i;
    for _ in 0..impacted.len() * k {
        lp.add_variable(0.0);
    }

    // Flow conservation.
    for j in 0..impacted.len() {
        let row: Vec<(usize, f64)> = (0..k).map(|i| (x_var(j, i), 1.0)).collect();
        lp.add_constraint(row, ConstraintOp::Eq, 1.0);
    }

    // Link capacity rows. Gather per-link coefficients sparsely.
    // link key: 0..num_up = upstream links, num_up.. = downstream links.
    let mut per_link: Vec<Vec<(usize, f64)>> = vec![Vec::new(); num_up + view.b.num_links()];
    for (j, &fid) in impacted.iter().enumerate() {
        let vol = flows.flows[fid.index()].volume;
        for i in 0..k {
            let icx = IcxId::new(i);
            for &l in paths.up_links(fid, icx) {
                per_link[l.index()].push((x_var(j, i), vol));
            }
            for &l in paths.down_links(fid, icx) {
                per_link[num_up + l.index()].push((x_var(j, i), vol));
            }
        }
    }
    let mut cap_rows = Vec::new();
    for (lkey, coeffs) in per_link.into_iter().enumerate() {
        let (res, cap) = if lkey < num_up {
            (residual.up[lkey], up_capacities[lkey])
        } else {
            (residual.down[lkey - num_up], down_capacities[lkey - num_up])
        };
        if coeffs.is_empty() && res == 0.0 {
            continue; // untouched link; no constraint needed
        }
        // Merge duplicate variables (a flow whose up-path uses a link
        // twice cannot happen on shortest paths, but different (j,i)
        // entries are already unique; volumes accumulate defensively).
        let mut merged: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for (var, c) in coeffs {
            *merged.entry(var).or_insert(0.0) += c;
        }
        let mut row: Vec<(usize, f64)> = merged.into_iter().collect();
        row.push((t_var, -cap));
        cap_rows.push(CapRow {
            row: lp.num_constraints(),
            residual: res,
            upstream: lkey < num_up,
            link: if lkey < num_up { lkey } else { lkey - num_up },
        });
        lp.add_constraint(row, ConstraintOp::Le, -res);
    }

    Program {
        problem: lp,
        cap_rows,
        residual,
    }
}

/// Interpret one solve's solution vector: objective `t`, per-flow
/// fractions and reconstructed link loads (residual scaled by
/// `residual_scale`, plus the impacted flows' fractional routes).
fn extract_optimum(
    solution: &[f64],
    impacted: &[FlowId],
    k: usize,
    paths: &PathTable,
    flows: &PairFlows,
    residual: &LinkLoads,
    residual_scale: f64,
) -> BandwidthOptimum {
    let t = solution[0];
    let x_var = |j: usize, i: usize| 1 + j * k + i;
    let mut fractions = GainTable::new(impacted.len(), k);
    for j in 0..impacted.len() {
        for (i, cell) in fractions.row_mut(j).iter_mut().enumerate() {
            *cell = solution[x_var(j, i)];
        }
    }
    // Reconstruct loads: (scaled) residual + fractional impacted flows.
    let mut loads = residual.clone();
    if residual_scale != 1.0 {
        for v in loads.up.iter_mut().chain(loads.down.iter_mut()) {
            *v *= residual_scale;
        }
    }
    for (j, &fid) in impacted.iter().enumerate() {
        let vol = flows.flows[fid.index()].volume;
        for (i, &frac) in fractions.row(j).iter().enumerate() {
            if frac > 1e-12 {
                loads.add_flow(paths, fid, IcxId::new(i), vol * frac);
            }
        }
    }
    BandwidthOptimum {
        t,
        fractions,
        loads,
    }
}

/// Map a solver outcome to the optimum or an error.
fn finish_solve(
    outcome: LpOutcome,
    impacted: &[FlowId],
    k: usize,
    paths: &PathTable,
    flows: &PairFlows,
    residual: &LinkLoads,
    residual_scale: f64,
) -> Result<BandwidthOptimum, OptimalBandwidthError> {
    match outcome {
        LpOutcome::Optimal { solution, .. } => Ok(extract_optimum(
            &solution,
            impacted,
            k,
            paths,
            flows,
            residual,
            residual_scale,
        )),
        LpOutcome::Infeasible => Err(OptimalBandwidthError::Numerical("infeasible")),
        LpOutcome::Unbounded => Err(OptimalBandwidthError::Numerical("unbounded")),
        LpOutcome::IterationLimit { iterations } => {
            Err(OptimalBandwidthError::SolverLimit { iterations })
        }
    }
}

/// Solve the fractional optimum for the impacted flows.
///
/// * `default_assignment` routes every flow; flows in `impacted` become
///   LP variables, all others contribute residual load at their assigned
///   interconnection.
/// * `up_capacities` / `down_capacities` are the per-link capacities of
///   the two ISPs (from [`nexit_workload::assign_capacities`]).
///
/// This is the standalone cold-start build; sweeps that re-solve
/// scenarios should hold a [`BandwidthLp`] session instead.
#[allow(clippy::too_many_arguments)]
pub fn optimal_bandwidth(
    view: &PairView<'_>,
    paths: &PathTable,
    flows: &PairFlows,
    impacted: &[FlowId],
    default_assignment: &Assignment,
    up_capacities: &[f64],
    down_capacities: &[f64],
) -> Result<BandwidthOptimum, OptimalBandwidthError> {
    let k = view.num_interconnections();
    let program = build_program(
        view,
        paths,
        flows,
        impacted,
        default_assignment,
        up_capacities,
        down_capacities,
    );
    let outcome = nexit_lp::solve_with(&program.problem, solver_options());
    finish_solve(outcome, impacted, k, paths, flows, &program.residual, 1.0)
}

/// One prepared failure scenario inside a [`BandwidthLp`] session.
struct ScenarioLp<'a> {
    failed: IcxId,
    impacted: Vec<FlowId>,
    k: usize,
    paths: &'a PathTable,
    flows: &'a PairFlows,
    program: Program,
    workspace: SimplexWorkspace,
}

/// An incremental per-pair LP session for failure sweeps.
///
/// Register every scenario once with [`BandwidthLp::add_scenario`] (the
/// skeleton is built exactly like [`optimal_bandwidth`] builds its
/// program, so the first solve of each scenario is bit-identical to the
/// standalone path), then re-solve freely: each scenario keeps its own
/// [`SimplexWorkspace`], so repeated solves — identical or with patched
/// capacity residuals via [`BandwidthLp::solve_failure_scaled`] — re-enter
/// the simplex warm from the retained optimal basis.
#[derive(Default)]
pub struct BandwidthLp<'a> {
    scenarios: Vec<ScenarioLp<'a>>,
}

impl<'a> BandwidthLp<'a> {
    /// An empty session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register one failure scenario: `view`/`paths`/`flows`/`defaults`
    /// describe the **reduced** (post-failure) pair, `impacted` the flows
    /// to re-route, `failed` the failed interconnection's id in the full
    /// pair (the session's lookup key).
    #[allow(clippy::too_many_arguments)]
    pub fn add_scenario(
        &mut self,
        failed: IcxId,
        view: &PairView<'a>,
        paths: &'a PathTable,
        flows: &'a PairFlows,
        impacted: &[FlowId],
        default_assignment: &Assignment,
        up_capacities: &[f64],
        down_capacities: &[f64],
    ) {
        debug_assert!(
            !self.scenarios.iter().any(|s| s.failed == failed),
            "scenario for failed {failed:?} registered twice"
        );
        let program = build_program(
            view,
            paths,
            flows,
            impacted,
            default_assignment,
            up_capacities,
            down_capacities,
        );
        self.scenarios.push(ScenarioLp {
            failed,
            impacted: impacted.to_vec(),
            k: view.num_interconnections(),
            paths,
            flows,
            program,
            workspace: SimplexWorkspace::with_options(solver_options()),
        });
    }

    /// Replace a registered scenario's program in place — new pair data
    /// (flows, volumes, residuals) and/or capacities — while
    /// **retaining the scenario's simplex workspace**. The rebuilt
    /// skeleton shares the old one's sparsity pattern whenever the
    /// topology and impacted set are unchanged, so the next solve
    /// re-enters through the workspace's coefficient-refresh path
    /// (column reload against the retained basis factorization) instead
    /// of cold-starting. The capacity-model grids call this once per
    /// grid cell; for an unregistered failure id this is exactly
    /// [`BandwidthLp::add_scenario`].
    #[allow(clippy::too_many_arguments)]
    pub fn update_scenario(
        &mut self,
        failed: IcxId,
        view: &PairView<'a>,
        paths: &'a PathTable,
        flows: &'a PairFlows,
        impacted: &[FlowId],
        default_assignment: &Assignment,
        up_capacities: &[f64],
        down_capacities: &[f64],
    ) {
        let program = build_program(
            view,
            paths,
            flows,
            impacted,
            default_assignment,
            up_capacities,
            down_capacities,
        );
        if let Some(s) = self.scenarios.iter_mut().find(|s| s.failed == failed) {
            s.impacted = impacted.to_vec();
            s.k = view.num_interconnections();
            s.paths = paths;
            s.flows = flows;
            s.program = program;
        } else {
            self.scenarios.push(ScenarioLp {
                failed,
                impacted: impacted.to_vec(),
                k: view.num_interconnections(),
                paths,
                flows,
                program,
                workspace: SimplexWorkspace::with_options(solver_options()),
            });
        }
    }

    /// Re-solve a registered scenario under a different capacity model:
    /// the `-capacity` coefficient of every retained capacity row is
    /// patched in place (the skeleton's sparsity pattern is untouched)
    /// and the solve goes through the retained workspace — a
    /// coefficient-patch warm start that refreshes the changed columns
    /// against the retained basis factorization instead of re-running
    /// phase 1. The rhs is reset to the unscaled residuals.
    pub fn solve_with_model(
        &mut self,
        failed: IcxId,
        up_capacities: &[f64],
        down_capacities: &[f64],
    ) -> Result<BandwidthOptimum, OptimalBandwidthError> {
        let scenario = self
            .scenarios
            .iter_mut()
            .find(|s| s.failed == failed)
            .unwrap_or_else(|| panic!("no scenario registered for failed {failed:?}"));
        for cr in &scenario.program.cap_rows {
            let cap = if cr.upstream {
                up_capacities[cr.link]
            } else {
                down_capacities[cr.link]
            };
            scenario
                .program
                .problem
                .set_coefficient(cr.row, T_VAR, -cap);
            scenario.program.problem.set_rhs(cr.row, -cr.residual);
        }
        let outcome = scenario.workspace.solve(&scenario.program.problem);
        finish_solve(
            outcome,
            &scenario.impacted,
            scenario.k,
            scenario.paths,
            scenario.flows,
            &scenario.program.residual,
            1.0,
        )
    }

    /// Number of registered scenarios.
    pub fn num_scenarios(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether a scenario is registered for this failure.
    pub fn has_scenario(&self, failed: IcxId) -> bool {
        self.scenarios.iter().any(|s| s.failed == failed)
    }

    /// LP variable count of one registered scenario (for size gating).
    pub fn scenario_variables(&self, failed: IcxId) -> Option<usize> {
        self.scenarios
            .iter()
            .find(|s| s.failed == failed)
            .map(|s| s.program.problem.num_variables())
    }

    /// Aggregate warm/cold/refresh counters across all scenario
    /// workspaces.
    pub fn warm_stats(&self) -> WarmStats {
        let mut total = WarmStats::default();
        for s in &self.scenarios {
            total.absorb(s.workspace.stats());
        }
        total
    }

    /// Drop every retained basis: the next solve of each scenario is
    /// forced cold (benchmarking the cold path through the identical
    /// formulation).
    pub fn invalidate_warm(&mut self) {
        for s in &mut self.scenarios {
            s.workspace.invalidate();
        }
    }

    /// Solve one registered scenario at the baseline residual load.
    /// Panics if the scenario was never registered.
    pub fn solve_failure(
        &mut self,
        failed: IcxId,
    ) -> Result<BandwidthOptimum, OptimalBandwidthError> {
        self.solve_failure_scaled(failed, 1.0)
    }

    /// Solve one registered scenario with the background (residual) load
    /// scaled by `residual_scale` — the what-if-traffic-grows variant of
    /// the optimum. The impacted flows' own volumes are unscaled; only
    /// the non-negotiated background shifts. This is an rhs-only patch of
    /// the scenario skeleton, so consecutive solves of one scenario
    /// warm-start from each other's bases.
    pub fn solve_failure_scaled(
        &mut self,
        failed: IcxId,
        residual_scale: f64,
    ) -> Result<BandwidthOptimum, OptimalBandwidthError> {
        assert!(
            residual_scale.is_finite() && residual_scale >= 0.0,
            "residual scale must be finite and non-negative"
        );
        let scenario = self
            .scenarios
            .iter_mut()
            .find(|s| s.failed == failed)
            .unwrap_or_else(|| panic!("no scenario registered for failed {failed:?}"));
        for cr in &scenario.program.cap_rows {
            scenario
                .program
                .problem
                .set_rhs(cr.row, -cr.residual * residual_scale);
        }
        let outcome = scenario.workspace.solve(&scenario.program.problem);
        finish_solve(
            outcome,
            &scenario.impacted,
            scenario.k,
            scenario.paths,
            scenario.flows,
            &scenario.program.residual,
            residual_scale,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_metrics::mel;
    use nexit_routing::ShortestPaths;
    use nexit_topology::{
        GeoPoint, Interconnection, IspId, IspPair, IspTopology, Link, Pop, PopId,
    };
    use nexit_workload::link_loads;

    fn pop(city: &str, lon: f64) -> Pop {
        Pop {
            city: city.into(),
            geo: GeoPoint::new(0.0, lon),
            weight: 1.0,
        }
    }

    fn line(id: u32, n: usize) -> IspTopology {
        let pops = (0..n).map(|i| pop(&format!("c{i}"), i as f64)).collect();
        let links = (0..n - 1)
            .map(|i| Link {
                a: PopId::new(i),
                b: PopId::new(i + 1),
                weight: 100.0,
                length_km: 100.0,
            })
            .collect();
        IspTopology::new(IspId(id), format!("L{id}"), pops, links, false).unwrap()
    }

    struct Fx {
        a: IspTopology,
        b: IspTopology,
        pair: IspPair,
    }

    fn fixture() -> Fx {
        let a = line(0, 3);
        let b = line(1, 3);
        let pair = IspPair::new(
            &a,
            &b,
            vec![
                Interconnection {
                    pop_a: PopId(0),
                    pop_b: PopId(0),
                    length_km: 0.0,
                },
                Interconnection {
                    pop_a: PopId(2),
                    pop_b: PopId(2),
                    length_km: 0.0,
                },
            ],
        )
        .unwrap();
        Fx { a, b, pair }
    }

    #[test]
    fn optimum_beats_or_matches_every_integral_assignment() {
        let fx = fixture();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |s, d| {
            1.0 + (s.index() * 2 + d.index()) as f64
        });
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let caps_a = vec![5.0; fx.a.num_links()];
        let caps_b = vec![5.0; fx.b.num_links()];
        let default = Assignment::uniform(flows.len(), IcxId(0));
        let impacted: Vec<FlowId> = (0..flows.len()).map(FlowId::new).collect();

        let opt = optimal_bandwidth(&view, &paths, &flows, &impacted, &default, &caps_a, &caps_b)
            .unwrap();

        // Exhaustively enumerate integral assignments (2^9 = 512) and
        // verify the fractional optimum is a lower bound on max ratio.
        let n = flows.len();
        let mut best_integral = f64::INFINITY;
        for mask in 0..(1u32 << n) {
            let choices: Vec<IcxId> = (0..n)
                .map(|f| IcxId::new(((mask >> f) & 1) as usize))
                .collect();
            let asg = Assignment::from_choices(choices);
            let loads = link_loads(&view, &paths, &flows, &asg);
            let m = mel(&loads.up, &caps_a).max(mel(&loads.down, &caps_b));
            best_integral = best_integral.min(m);
        }
        assert!(
            opt.t <= best_integral + 1e-6,
            "fractional {} must lower-bound integral {}",
            opt.t,
            best_integral
        );
        // And it should not be absurdly below (sanity).
        assert!(opt.t > 0.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let fx = fixture();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let caps_a = vec![2.0; fx.a.num_links()];
        let caps_b = vec![2.0; fx.b.num_links()];
        let default = Assignment::uniform(flows.len(), IcxId(0));
        let impacted: Vec<FlowId> = (0..flows.len()).map(FlowId::new).collect();
        let opt = optimal_bandwidth(&view, &paths, &flows, &impacted, &default, &caps_a, &caps_b)
            .unwrap();
        for j in 0..opt.fractions.num_flows() {
            let fr = opt.fractions.row(j);
            let s: f64 = fr.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "fractions sum {s}");
            assert!(fr.iter().all(|&x| x >= -1e-9));
        }
    }

    #[test]
    fn residual_flows_count_against_capacity() {
        let fx = fixture();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let caps_a = vec![1.0; fx.a.num_links()];
        let caps_b = vec![1.0; fx.b.num_links()];
        let default = Assignment::uniform(flows.len(), IcxId(0));
        // Only one impacted flow; the rest are residual on icx0.
        let impacted = vec![FlowId::new(8)];
        let opt = optimal_bandwidth(&view, &paths, &flows, &impacted, &default, &caps_a, &caps_b)
            .unwrap();
        // Residual load alone drives t well above 1 on unit capacities
        // (upstream link a0-a1 carries >= 5 residual units).
        assert!(opt.t >= 5.0 - 1e-6, "t = {}", opt.t);
        // Optimal moves the impacted a2->b2 flow off the congested side.
        assert!(opt.fractions.get(0, 1) > 0.99);
    }

    #[test]
    fn empty_impacted_set_is_residual_only() {
        let fx = fixture();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let caps_a = vec![2.0; fx.a.num_links()];
        let caps_b = vec![2.0; fx.b.num_links()];
        let default = Assignment::uniform(flows.len(), IcxId(0));
        let opt =
            optimal_bandwidth(&view, &paths, &flows, &[], &default, &caps_a, &caps_b).unwrap();
        let loads = link_loads(&view, &paths, &flows, &default);
        let expect = mel(&loads.up, &caps_a).max(mel(&loads.down, &caps_b));
        assert!((opt.t - expect).abs() < 1e-6);
    }

    /// The session's first solve of a scenario is the standalone build:
    /// same program, same cold path, identical results.
    #[test]
    fn session_first_solve_matches_standalone() {
        let fx = fixture();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |s, d| {
            1.0 + (s.index() + 2 * d.index()) as f64
        });
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let caps_a = vec![4.0; fx.a.num_links()];
        let caps_b = vec![4.0; fx.b.num_links()];
        let default = Assignment::uniform(flows.len(), IcxId(0));
        let impacted: Vec<FlowId> = (0..flows.len())
            .filter(|f| f % 2 == 0)
            .map(FlowId::new)
            .collect();

        let standalone =
            optimal_bandwidth(&view, &paths, &flows, &impacted, &default, &caps_a, &caps_b)
                .unwrap();
        let mut session = BandwidthLp::new();
        session.add_scenario(
            IcxId(0),
            &view,
            &paths,
            &flows,
            &impacted,
            &default,
            &caps_a,
            &caps_b,
        );
        let via_session = session.solve_failure(IcxId(0)).unwrap();
        assert_eq!(via_session.t.to_bits(), standalone.t.to_bits());
        assert_eq!(via_session.fractions, standalone.fractions);
        assert_eq!(via_session.loads, standalone.loads);
    }

    /// Warm re-solves across residual scales must agree with fresh cold
    /// solves of the equivalently scaled program.
    #[test]
    fn warm_scaled_resolves_match_cold() {
        let fx = fixture();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |s, d| {
            1.0 + (s.index() * 2 + d.index()) as f64
        });
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let caps_a = vec![5.0; fx.a.num_links()];
        let caps_b = vec![5.0; fx.b.num_links()];
        let default = Assignment::uniform(flows.len(), IcxId(0));
        let impacted: Vec<FlowId> = (0..flows.len())
            .filter(|f| f % 3 != 0)
            .map(FlowId::new)
            .collect();

        let mut warm = BandwidthLp::new();
        warm.add_scenario(
            IcxId(0),
            &view,
            &paths,
            &flows,
            &impacted,
            &default,
            &caps_a,
            &caps_b,
        );
        let mut cold = BandwidthLp::new();
        cold.add_scenario(
            IcxId(0),
            &view,
            &paths,
            &flows,
            &impacted,
            &default,
            &caps_a,
            &caps_b,
        );

        for scale in [1.0, 1.1, 1.25, 1.5, 2.0, 0.75, 0.0] {
            let w = warm.solve_failure_scaled(IcxId(0), scale).unwrap();
            cold.invalidate_warm();
            let c = cold.solve_failure_scaled(IcxId(0), scale).unwrap();
            assert!(
                (w.t - c.t).abs() < 1e-9,
                "scale {scale}: warm t {} != cold t {}",
                w.t,
                c.t
            );
            // The warm solution realizes its own objective: max
            // load-to-capacity ratio of the reconstructed loads is t.
            let realized = mel(&w.loads.up, &caps_a).max(mel(&w.loads.down, &caps_b));
            assert!(
                (realized - w.t).abs() < 1e-6,
                "scale {scale}: realized {realized} vs t {}",
                w.t
            );
            for j in 0..w.fractions.num_flows() {
                let s: f64 = w.fractions.row(j).iter().sum();
                assert!((s - 1.0).abs() < 1e-6);
            }
        }
        // The chain must actually have warm-started (deterministic, so
        // this cannot flake).
        let stats = warm.warm_stats();
        assert!(stats.warm_solves >= 4, "warm stats: {stats:?}");
        assert_eq!(cold.warm_stats().warm_solves, 0);
    }

    /// Capacity-model re-solves through `solve_with_model` must agree
    /// with a fresh standalone build under the same capacities, and must
    /// actually take the coefficient-refresh path.
    #[test]
    fn capacity_model_resolves_run_warm_and_match_cold() {
        let fx = fixture();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |s, d| {
            1.0 + (s.index() * 2 + d.index()) as f64
        });
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let base_caps_a = vec![5.0; fx.a.num_links()];
        let base_caps_b = vec![5.0; fx.b.num_links()];
        let default = Assignment::uniform(flows.len(), IcxId(0));
        let impacted: Vec<FlowId> = (0..flows.len())
            .filter(|f| f % 3 != 0)
            .map(FlowId::new)
            .collect();

        let mut session = BandwidthLp::new();
        session.add_scenario(
            IcxId(0),
            &view,
            &paths,
            &flows,
            &impacted,
            &default,
            &base_caps_a,
            &base_caps_b,
        );
        session.solve_failure(IcxId(0)).unwrap();

        // A grid of capacity models: power-of-two-ish scalings and an
        // asymmetric one.
        for (sa, sb) in [(2.0, 1.0), (1.0, 2.0), (0.5, 1.5), (4.0, 4.0)] {
            let caps_a: Vec<f64> = base_caps_a.iter().map(|c| c * sa).collect();
            let caps_b: Vec<f64> = base_caps_b.iter().map(|c| c * sb).collect();
            let warm = session
                .solve_with_model(IcxId(0), &caps_a, &caps_b)
                .unwrap();
            let cold =
                optimal_bandwidth(&view, &paths, &flows, &impacted, &default, &caps_a, &caps_b)
                    .unwrap();
            assert!(
                (warm.t - cold.t).abs() < 1e-9,
                "caps ({sa}, {sb}): warm t {} != cold t {}",
                warm.t,
                cold.t
            );
            // The warm optimum realizes its own objective on the new
            // capacities.
            let realized = mel(&warm.loads.up, &caps_a).max(mel(&warm.loads.down, &caps_b));
            assert!((realized - warm.t).abs() < 1e-6);
        }
        let stats = session.warm_stats();
        assert_eq!(stats.cold_solves, 1, "stats: {stats:?}");
        assert!(
            stats.refresh_solves >= 3,
            "capacity patches must refresh, not fall back: {stats:?}"
        );
    }

    /// `update_scenario` keeps the workspace: re-registering the same
    /// scenario with different volumes (a workload change) re-solves
    /// through the refresh path and matches the standalone build.
    #[test]
    fn update_scenario_retains_the_workspace() {
        let fx = fixture();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows_1 = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let flows_2 = PairFlows::build(&view, &sp_a, &sp_b, |s, d| {
            2.0 + (s.index() + d.index()) as f64
        });
        let paths_1 = PathTable::build(&view, &sp_a, &sp_b, &flows_1);
        let paths_2 = PathTable::build(&view, &sp_a, &sp_b, &flows_2);
        let caps_a = vec![4.0; fx.a.num_links()];
        let caps_b = vec![4.0; fx.b.num_links()];
        let default = Assignment::uniform(flows_1.len(), IcxId(0));
        let impacted: Vec<FlowId> = (0..flows_1.len()).map(FlowId::new).collect();

        let mut session = BandwidthLp::new();
        session.update_scenario(
            IcxId(0),
            &view,
            &paths_1,
            &flows_1,
            &impacted,
            &default,
            &caps_a,
            &caps_b,
        );
        session.solve_failure(IcxId(0)).unwrap();
        assert_eq!(session.num_scenarios(), 1);

        // Same structure, new volumes: the update must not discard the
        // retained basis.
        session.update_scenario(
            IcxId(0),
            &view,
            &paths_2,
            &flows_2,
            &impacted,
            &default,
            &caps_a,
            &caps_b,
        );
        assert_eq!(session.num_scenarios(), 1);
        let warm = session.solve_failure(IcxId(0)).unwrap();
        let cold = optimal_bandwidth(
            &view, &paths_2, &flows_2, &impacted, &default, &caps_a, &caps_b,
        )
        .unwrap();
        assert!(
            (warm.t - cold.t).abs() < 1e-9,
            "warm {} cold {}",
            warm.t,
            cold.t
        );
        let stats = session.warm_stats();
        assert_eq!(stats.cold_solves, 1, "stats: {stats:?}");
        assert_eq!(stats.refresh_solves + stats.refresh_fallbacks, 1);
    }

    /// Per-scenario workspaces: solving different failures in
    /// interleaved order still warm-starts each scenario's re-solves.
    #[test]
    fn interleaved_scenarios_keep_their_bases() {
        let fx = fixture();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let caps_a = vec![3.0; fx.a.num_links()];
        let caps_b = vec![3.0; fx.b.num_links()];
        let default = Assignment::uniform(flows.len(), IcxId(0));
        let impacted_even: Vec<FlowId> = (0..flows.len())
            .filter(|f| f % 2 == 0)
            .map(FlowId::new)
            .collect();
        let impacted_odd: Vec<FlowId> = (0..flows.len())
            .filter(|f| f % 2 == 1)
            .map(FlowId::new)
            .collect();

        let mut session = BandwidthLp::new();
        session.add_scenario(
            IcxId(0),
            &view,
            &paths,
            &flows,
            &impacted_even,
            &default,
            &caps_a,
            &caps_b,
        );
        session.add_scenario(
            IcxId(1),
            &view,
            &paths,
            &flows,
            &impacted_odd,
            &default,
            &caps_a,
            &caps_b,
        );
        assert_eq!(session.num_scenarios(), 2);
        assert!(session.has_scenario(IcxId(1)));
        assert!(!session.has_scenario(IcxId(5)));

        let mut reference = Vec::new();
        for scale in [1.0, 1.2] {
            for failed in [IcxId(0), IcxId(1)] {
                reference.push(session.solve_failure_scaled(failed, scale).unwrap().t);
            }
        }
        // Second pass over the same (failed, scale) grid: all warm, all
        // matching.
        let before = session.warm_stats();
        let mut idx = 0;
        for scale in [1.0, 1.2] {
            for failed in [IcxId(0), IcxId(1)] {
                let t = session.solve_failure_scaled(failed, scale).unwrap().t;
                assert!((t - reference[idx]).abs() < 1e-9);
                idx += 1;
            }
        }
        let after = session.warm_stats();
        assert_eq!(
            after.warm_solves - before.warm_solves,
            4,
            "repeat pass must be fully warm: {before:?} -> {after:?}"
        );
    }
}
