//! Globally optimal overload routing (fractional LP).
//!
//! The paper (§5.2): *"The globally optimal is computed by solving an
//! optimization problem that minimizes the maximum increase in link load.
//! For computational tractability, we allow flows to be fractionally
//! divided among interconnections; thus, the quality of this routing is an
//! upper bound on the global optimal without fractional routing."*
//!
//! Formulation, with `x[f][i]` the fraction of impacted flow `f` routed
//! via interconnection `i`:
//!
//! ```text
//! minimize t
//! s.t. Σ_i x[f][i] = 1                          for every impacted flow f
//!      residual(l) + Σ_f Σ_i vol_f · x[f][i] · [l ∈ path(f,i)]
//!                    <= t · capacity(l)          for every link l (both ISPs)
//!      x >= 0
//! ```
//!
//! `residual(l)` is the load from flows *not* on the negotiation table
//! (they stay on their default paths). The optimum `t` is the fractional
//! MEL across both ISPs treated as one system.

use nexit_core::GainTable;
use nexit_lp::{solve_with, ConstraintOp, LpOutcome, LpProblem, SimplexOptions};
use nexit_routing::{Assignment, FlowId, PairFlows};
use nexit_topology::{IcxId, PairView};
use nexit_workload::{LinkLoads, PathTable};

/// Result of the fractional optimum.
#[derive(Debug, Clone)]
pub struct BandwidthOptimum {
    /// The optimal objective: the minimal achievable maximum
    /// load-to-capacity ratio across both ISPs.
    pub t: f64,
    /// `fractions.get(j, i)` = fraction of impacted flow `j` (in input
    /// order) routed via interconnection `i`. Flat `impacted × k` table
    /// (same layout as the negotiation core's gain tables).
    pub fractions: GainTable,
    /// Link loads under the fractional optimum (including residual).
    pub loads: LinkLoads,
}

impl BandwidthOptimum {
    /// MEL of one side under the optimum. `up_capacities` /
    /// `down_capacities` as used in the solve.
    pub fn side_mel(&self, capacities: &[f64], upstream: bool) -> f64 {
        let loads = if upstream {
            &self.loads.up
        } else {
            &self.loads.down
        };
        nexit_metrics::mel(loads, capacities)
    }
}

/// Failure modes of the optimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimalBandwidthError {
    /// The LP solver hit its iteration cap (pathological input).
    SolverLimit,
    /// The LP was reported infeasible or unbounded — impossible for this
    /// formulation (`x = default split, t large` is always feasible), so
    /// it indicates a numerical failure worth surfacing.
    Numerical(&'static str),
}

impl std::fmt::Display for OptimalBandwidthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimalBandwidthError::SolverLimit => write!(f, "simplex iteration cap reached"),
            OptimalBandwidthError::Numerical(what) => {
                write!(f, "LP reported {what} for a trivially feasible program")
            }
        }
    }
}

impl std::error::Error for OptimalBandwidthError {}

/// Solve the fractional optimum for the impacted flows.
///
/// * `default_assignment` routes every flow; flows in `impacted` become
///   LP variables, all others contribute residual load at their assigned
///   interconnection.
/// * `up_capacities` / `down_capacities` are the per-link capacities of
///   the two ISPs (from [`nexit_workload::assign_capacities`]).
#[allow(clippy::too_many_arguments)]
pub fn optimal_bandwidth(
    view: &PairView<'_>,
    paths: &PathTable,
    flows: &PairFlows,
    impacted: &[FlowId],
    default_assignment: &Assignment,
    up_capacities: &[f64],
    down_capacities: &[f64],
) -> Result<BandwidthOptimum, OptimalBandwidthError> {
    let k = view.num_interconnections();
    let num_up = view.a.num_links();

    // Residual loads from non-impacted flows.
    let mut residual = LinkLoads::zero(view);
    let impacted_set: std::collections::HashSet<FlowId> = impacted.iter().copied().collect();
    for (fid, flow, _) in flows.iter() {
        if !impacted_set.contains(&fid) {
            residual.add_flow(paths, fid, default_assignment.choice(fid), flow.volume);
        }
    }

    // Build the LP. Variable 0 is t; x[j][i] follows in row-major order.
    let mut lp = LpProblem::new();
    let t_var = lp.add_variable(1.0);
    let x_var = |j: usize, i: usize| 1 + j * k + i;
    for _ in 0..impacted.len() * k {
        lp.add_variable(0.0);
    }

    // Flow conservation.
    for j in 0..impacted.len() {
        let row: Vec<(usize, f64)> = (0..k).map(|i| (x_var(j, i), 1.0)).collect();
        lp.add_constraint(row, ConstraintOp::Eq, 1.0);
    }

    // Link capacity rows. Gather per-link coefficients sparsely.
    // link key: 0..num_up = upstream links, num_up.. = downstream links.
    let mut per_link: Vec<Vec<(usize, f64)>> = vec![Vec::new(); num_up + view.b.num_links()];
    for (j, &fid) in impacted.iter().enumerate() {
        let vol = flows.flows[fid.index()].volume;
        for i in 0..k {
            let icx = IcxId::new(i);
            for &l in paths.up_links(fid, icx) {
                per_link[l.index()].push((x_var(j, i), vol));
            }
            for &l in paths.down_links(fid, icx) {
                per_link[num_up + l.index()].push((x_var(j, i), vol));
            }
        }
    }
    for (lkey, coeffs) in per_link.into_iter().enumerate() {
        let (res, cap) = if lkey < num_up {
            (residual.up[lkey], up_capacities[lkey])
        } else {
            (residual.down[lkey - num_up], down_capacities[lkey - num_up])
        };
        if coeffs.is_empty() && res == 0.0 {
            continue; // untouched link; no constraint needed
        }
        // Merge duplicate variables (a flow whose up-path uses a link
        // twice cannot happen on shortest paths, but different (j,i)
        // entries are already unique; volumes accumulate defensively).
        let mut merged: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for (var, c) in coeffs {
            *merged.entry(var).or_insert(0.0) += c;
        }
        let mut row: Vec<(usize, f64)> = merged.into_iter().collect();
        row.push((t_var, -cap));
        lp.add_constraint(row, ConstraintOp::Le, -res);
    }

    let options = SimplexOptions {
        max_iterations: 500_000,
        ..SimplexOptions::default()
    };
    match solve_with(&lp, options) {
        LpOutcome::Optimal { solution, .. } => {
            let t = solution[t_var];
            let mut fractions = GainTable::new(impacted.len(), k);
            for j in 0..impacted.len() {
                for (i, cell) in fractions.row_mut(j).iter_mut().enumerate() {
                    *cell = solution[x_var(j, i)];
                }
            }
            // Reconstruct loads: residual + fractional impacted flows.
            let mut loads = residual;
            for (j, &fid) in impacted.iter().enumerate() {
                let vol = flows.flows[fid.index()].volume;
                for (i, &frac) in fractions.row(j).iter().enumerate() {
                    if frac > 1e-12 {
                        loads.add_flow(paths, fid, IcxId::new(i), vol * frac);
                    }
                }
            }
            Ok(BandwidthOptimum {
                t,
                fractions,
                loads,
            })
        }
        LpOutcome::Infeasible => Err(OptimalBandwidthError::Numerical("infeasible")),
        LpOutcome::Unbounded => Err(OptimalBandwidthError::Numerical("unbounded")),
        LpOutcome::IterationLimit => Err(OptimalBandwidthError::SolverLimit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_metrics::mel;
    use nexit_routing::ShortestPaths;
    use nexit_topology::{
        GeoPoint, Interconnection, IspId, IspPair, IspTopology, Link, Pop, PopId,
    };
    use nexit_workload::link_loads;

    fn pop(city: &str, lon: f64) -> Pop {
        Pop {
            city: city.into(),
            geo: GeoPoint::new(0.0, lon),
            weight: 1.0,
        }
    }

    fn line(id: u32, n: usize) -> IspTopology {
        let pops = (0..n).map(|i| pop(&format!("c{i}"), i as f64)).collect();
        let links = (0..n - 1)
            .map(|i| Link {
                a: PopId::new(i),
                b: PopId::new(i + 1),
                weight: 100.0,
                length_km: 100.0,
            })
            .collect();
        IspTopology::new(IspId(id), format!("L{id}"), pops, links, false).unwrap()
    }

    struct Fx {
        a: IspTopology,
        b: IspTopology,
        pair: IspPair,
    }

    fn fixture() -> Fx {
        let a = line(0, 3);
        let b = line(1, 3);
        let pair = IspPair::new(
            &a,
            &b,
            vec![
                Interconnection {
                    pop_a: PopId(0),
                    pop_b: PopId(0),
                    length_km: 0.0,
                },
                Interconnection {
                    pop_a: PopId(2),
                    pop_b: PopId(2),
                    length_km: 0.0,
                },
            ],
        )
        .unwrap();
        Fx { a, b, pair }
    }

    #[test]
    fn optimum_beats_or_matches_every_integral_assignment() {
        let fx = fixture();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |s, d| {
            1.0 + (s.index() * 2 + d.index()) as f64
        });
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let caps_a = vec![5.0; fx.a.num_links()];
        let caps_b = vec![5.0; fx.b.num_links()];
        let default = Assignment::uniform(flows.len(), IcxId(0));
        let impacted: Vec<FlowId> = (0..flows.len()).map(FlowId::new).collect();

        let opt = optimal_bandwidth(&view, &paths, &flows, &impacted, &default, &caps_a, &caps_b)
            .unwrap();

        // Exhaustively enumerate integral assignments (2^9 = 512) and
        // verify the fractional optimum is a lower bound on max ratio.
        let n = flows.len();
        let mut best_integral = f64::INFINITY;
        for mask in 0..(1u32 << n) {
            let choices: Vec<IcxId> = (0..n)
                .map(|f| IcxId::new(((mask >> f) & 1) as usize))
                .collect();
            let asg = Assignment::from_choices(choices);
            let loads = link_loads(&view, &paths, &flows, &asg);
            let m = mel(&loads.up, &caps_a).max(mel(&loads.down, &caps_b));
            best_integral = best_integral.min(m);
        }
        assert!(
            opt.t <= best_integral + 1e-6,
            "fractional {} must lower-bound integral {}",
            opt.t,
            best_integral
        );
        // And it should not be absurdly below (sanity).
        assert!(opt.t > 0.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let fx = fixture();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let caps_a = vec![2.0; fx.a.num_links()];
        let caps_b = vec![2.0; fx.b.num_links()];
        let default = Assignment::uniform(flows.len(), IcxId(0));
        let impacted: Vec<FlowId> = (0..flows.len()).map(FlowId::new).collect();
        let opt = optimal_bandwidth(&view, &paths, &flows, &impacted, &default, &caps_a, &caps_b)
            .unwrap();
        for j in 0..opt.fractions.num_flows() {
            let fr = opt.fractions.row(j);
            let s: f64 = fr.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "fractions sum {s}");
            assert!(fr.iter().all(|&x| x >= -1e-9));
        }
    }

    #[test]
    fn residual_flows_count_against_capacity() {
        let fx = fixture();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let caps_a = vec![1.0; fx.a.num_links()];
        let caps_b = vec![1.0; fx.b.num_links()];
        let default = Assignment::uniform(flows.len(), IcxId(0));
        // Only one impacted flow; the rest are residual on icx0.
        let impacted = vec![FlowId::new(8)];
        let opt = optimal_bandwidth(&view, &paths, &flows, &impacted, &default, &caps_a, &caps_b)
            .unwrap();
        // Residual load alone drives t well above 1 on unit capacities
        // (upstream link a0-a1 carries >= 5 residual units).
        assert!(opt.t >= 5.0 - 1e-6, "t = {}", opt.t);
        // Optimal moves the impacted a2->b2 flow off the congested side.
        assert!(opt.fractions.get(0, 1) > 0.99);
    }

    #[test]
    fn empty_impacted_set_is_residual_only() {
        let fx = fixture();
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let caps_a = vec![2.0; fx.a.num_links()];
        let caps_b = vec![2.0; fx.b.num_links()];
        let default = Assignment::uniform(flows.len(), IcxId(0));
        let opt =
            optimal_bandwidth(&view, &paths, &flows, &[], &default, &caps_a, &caps_b).unwrap();
        let loads = link_loads(&view, &paths, &flows, &default);
        let expect = mel(&loads.up, &caps_a).max(mel(&loads.down, &caps_b));
        assert!((opt.t - expect).abs() < 1e-6);
    }
}
