//! Unilateral upstream optimization (Figure 8).
//!
//! The paper's hypothesis check: *"what happens if, instead of negotiating
//! with the downstream, the upstream unilaterally load balances outgoing
//! traffic?"* The upstream greedily re-routes impacted flows to minimize
//! the maximum load-to-capacity ratio inside *its own* network, blind to
//! the downstream. Figure 8 shows the downstream impact is unpredictable
//! and often harmful.

use nexit_routing::{Assignment, FlowId, PairFlows};
use nexit_topology::{IcxId, PairView};
use nexit_workload::PathTable;

/// Greedy upstream-only optimization of the impacted flows.
///
/// Flows are processed in descending volume order (biggest levers first);
/// each picks the interconnection minimizing the maximum post-move
/// load-to-capacity ratio along its upstream path, given the loads of all
/// previous decisions. Ties break to the lower interconnection id.
pub fn unilateral_upstream(
    view: &PairView<'_>,
    paths: &PathTable,
    flows: &PairFlows,
    impacted: &[FlowId],
    default_assignment: &Assignment,
    up_capacities: &[f64],
) -> Assignment {
    let k = view.num_interconnections();
    let mut assignment = default_assignment.clone();

    // Current upstream loads under the default assignment.
    let mut loads = vec![0.0; up_capacities.len()];
    for (fid, flow, _) in flows.iter() {
        for &l in paths.up_links(fid, assignment.choice(fid)) {
            loads[l.index()] += flow.volume;
        }
    }

    let mut order: Vec<FlowId> = impacted.to_vec();
    // The comparator is a total order (volume desc, flow id asc), so the
    // unstable sort is deterministic and skips the stable sort's scratch
    // allocation — this runs once per failure scenario in the bandwidth
    // sweeps.
    order.sort_unstable_by(|x, y| {
        let vx = flows.flows[x.index()].volume;
        let vy = flows.flows[y.index()].volume;
        vy.partial_cmp(&vx)
            .expect("volumes are finite")
            .then(x.cmp(y))
    });

    for fid in order {
        let volume = flows.flows[fid.index()].volume;
        let cur = assignment.choice(fid);
        // Remove the flow from its current path, then evaluate each
        // alternative on the emptied state.
        for &l in paths.up_links(fid, cur) {
            loads[l.index()] -= volume;
        }
        let mut best = IcxId::new(0);
        let mut best_cost = f64::INFINITY;
        for alt in 0..k {
            let alt_id = IcxId::new(alt);
            let cost = paths
                .up_links(fid, alt_id)
                .iter()
                .map(|&l| (loads[l.index()] + volume) / up_capacities[l.index()])
                .fold(0.0_f64, f64::max);
            if cost < best_cost {
                best_cost = cost;
                best = alt_id;
            }
        }
        for &l in paths.up_links(fid, best) {
            loads[l.index()] += volume;
        }
        assignment.set(fid, best);
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_metrics::mel;
    use nexit_routing::ShortestPaths;
    use nexit_topology::{
        GeoPoint, Interconnection, IspId, IspPair, IspTopology, Link, Pop, PopId,
    };
    use nexit_workload::link_loads;

    fn pop(city: &str, lon: f64) -> Pop {
        Pop {
            city: city.into(),
            geo: GeoPoint::new(0.0, lon),
            weight: 1.0,
        }
    }

    fn line(id: u32, n: usize) -> IspTopology {
        let pops = (0..n).map(|i| pop(&format!("c{i}"), i as f64)).collect();
        let links = (0..n - 1)
            .map(|i| Link {
                a: PopId::new(i),
                b: PopId::new(i + 1),
                weight: 100.0,
                length_km: 100.0,
            })
            .collect();
        IspTopology::new(IspId(id), format!("L{id}"), pops, links, false).unwrap()
    }

    #[test]
    fn upstream_mel_improves_or_holds() {
        let a = line(0, 3);
        let b = line(1, 3);
        let pair = IspPair::new(
            &a,
            &b,
            vec![
                Interconnection {
                    pop_a: PopId(0),
                    pop_b: PopId(0),
                    length_km: 0.0,
                },
                Interconnection {
                    pop_a: PopId(2),
                    pop_b: PopId(2),
                    length_km: 0.0,
                },
            ],
        )
        .unwrap();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |s, d| {
            1.0 + (s.index() + d.index()) as f64
        });
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let caps = vec![3.0; a.num_links()];
        let default = Assignment::uniform(flows.len(), IcxId(0));
        let impacted: Vec<FlowId> = (0..flows.len()).map(FlowId::new).collect();
        let uni = unilateral_upstream(&view, &paths, &flows, &impacted, &default, &caps);

        let before = link_loads(&view, &paths, &flows, &default);
        let after = link_loads(&view, &paths, &flows, &uni);
        assert!(
            mel(&after.up, &caps) <= mel(&before.up, &caps) + 1e-9,
            "greedy must not worsen the upstream"
        );
    }

    #[test]
    fn untouched_flows_keep_their_assignment() {
        let a = line(0, 3);
        let b = line(1, 3);
        let pair = IspPair::new(
            &a,
            &b,
            vec![
                Interconnection {
                    pop_a: PopId(0),
                    pop_b: PopId(0),
                    length_km: 0.0,
                },
                Interconnection {
                    pop_a: PopId(2),
                    pop_b: PopId(2),
                    length_km: 0.0,
                },
            ],
        )
        .unwrap();
        let view = PairView::new(&a, &b, &pair);
        let sp_a = ShortestPaths::compute(&a);
        let sp_b = ShortestPaths::compute(&b);
        let flows = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let paths = PathTable::build(&view, &sp_a, &sp_b, &flows);
        let caps = vec![3.0; a.num_links()];
        let default = Assignment::uniform(flows.len(), IcxId(0));
        let impacted = vec![FlowId::new(4)];
        let uni = unilateral_upstream(&view, &paths, &flows, &impacted, &default, &caps);
        for (id, choice) in uni.iter() {
            if id != FlowId::new(4) {
                assert_eq!(choice, default.choice(id));
            }
        }
    }
}
