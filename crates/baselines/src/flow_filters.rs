//! Flow-Pareto and flow-both-better strategies (Figure 5).
//!
//! The paper's "seemingly reasonable" non-negotiation alternatives: for
//! each pair of *opposite* flows (a→b and b→a between the same PoPs),
//! discard the candidate interconnection combinations that are obviously
//! bad, then pick one of the survivors at random:
//!
//! * **flow-Pareto** rejects combinations worse than the default for
//!   *both* ISPs,
//! * **flow-both-better** rejects combinations worse for *any one* ISP.
//!
//! Both avoid obvious flow-level waste yet capture almost none of the
//! negotiation gain — the paper's point that gains require trading across
//! the whole flow set.

use nexit_routing::{Assignment, FlowId, PairFlows};
use nexit_topology::IcxId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which rejection rule to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Filter {
    Pareto,
    BothBetter,
}

/// Inputs shared by both strategies: the two directed flow sets of one
/// pair and their default assignments.
///
/// `fwd` is the A→B direction (A upstream); `rev` is B→A built on the
/// reversed [`nexit_topology::PairView`]. Flow `(i, j)` of `fwd` (source
/// PoP `i` of A, destination PoP `j` of B, row-major) pairs with flow
/// `(j, i)` of `rev`.
pub struct OppositeFlows<'a> {
    /// A→B flows.
    pub fwd: &'a PairFlows,
    /// B→A flows (on the reversed view).
    pub rev: &'a PairFlows,
    /// Default (early-exit) assignment for `fwd`.
    pub fwd_default: &'a Assignment,
    /// Default (early-exit) assignment for `rev`.
    pub rev_default: &'a Assignment,
    /// Number of PoPs in ISP A (to pair opposite flows).
    pub num_pops_a: usize,
    /// Number of PoPs in ISP B.
    pub num_pops_b: usize,
}

/// The flow-Pareto strategy: among combinations not worse for both ISPs,
/// pick one at random (seeded). Returns assignments for both directions.
pub fn flow_pareto(input: &OppositeFlows<'_>, seed: u64) -> (Assignment, Assignment) {
    run_filter(input, Filter::Pareto, seed)
}

/// The flow-both-better strategy: among combinations worse for neither
/// ISP, pick one at random (seeded).
pub fn flow_both_better(input: &OppositeFlows<'_>, seed: u64) -> (Assignment, Assignment) {
    run_filter(input, Filter::BothBetter, seed)
}

fn run_filter(input: &OppositeFlows<'_>, filter: Filter, seed: u64) -> (Assignment, Assignment) {
    let k = input
        .fwd
        .metrics
        .first()
        .map_or(0, |m| m.num_alternatives());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fwd_asg = input.fwd_default.clone();
    let mut rev_asg = input.rev_default.clone();

    for i in 0..input.num_pops_a {
        for j in 0..input.num_pops_b {
            let f_fwd = FlowId::new(i * input.num_pops_b + j);
            let f_rev = FlowId::new(j * input.num_pops_a + i);
            let mf = &input.fwd.metrics[f_fwd.index()];
            let mr = &input.rev.metrics[f_rev.index()];
            let fd = input.fwd_default.choice(f_fwd);
            let rd = input.rev_default.choice(f_rev);

            // ISP A's distance for this opposite-flow pair: the forward
            // flow inside A (upstream side of fwd) plus the reverse flow
            // inside A (downstream side of rev). Mirror for B.
            let delta_a = |x: IcxId, y: IcxId| {
                (mf.up_km[x.index()] - mf.up_km[fd.index()])
                    + (mr.down_km[y.index()] - mr.down_km[rd.index()])
            };
            let delta_b = |x: IcxId, y: IcxId| {
                (mf.down_km[x.index()] - mf.down_km[fd.index()])
                    + (mr.up_km[y.index()] - mr.up_km[rd.index()])
            };

            let mut candidates: Vec<(IcxId, IcxId)> = Vec::with_capacity(k * k);
            for x in 0..k {
                for y in 0..k {
                    let (x, y) = (IcxId::new(x), IcxId::new(y));
                    let (da, db) = (delta_a(x, y), delta_b(x, y));
                    let keep = match filter {
                        // Reject only when worse for both.
                        Filter::Pareto => !(da > 0.0 && db > 0.0),
                        // Reject when worse for any one.
                        Filter::BothBetter => da <= 0.0 && db <= 0.0,
                    };
                    if keep {
                        candidates.push((x, y));
                    }
                }
            }
            // The default combination always qualifies under both rules,
            // so candidates is never empty.
            debug_assert!(!candidates.is_empty());
            let (x, y) = candidates[rng.gen_range(0..candidates.len())];
            fwd_asg.set(f_fwd, x);
            rev_asg.set(f_rev, y);
        }
    }
    (fwd_asg, rev_asg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_routing::{assignment, ShortestPaths};
    use nexit_topology::{
        GeoPoint, Interconnection, IspId, IspPair, IspTopology, Link, PairView, Pop, PopId,
    };

    fn pop(city: &str, lon: f64) -> Pop {
        Pop {
            city: city.into(),
            geo: GeoPoint::new(0.0, lon),
            weight: 1.0,
        }
    }

    fn line(id: u32, n: usize) -> IspTopology {
        let pops = (0..n).map(|i| pop(&format!("c{i}"), i as f64)).collect();
        let links = (0..n - 1)
            .map(|i| Link {
                a: PopId::new(i),
                b: PopId::new(i + 1),
                weight: 100.0,
                length_km: 100.0,
            })
            .collect();
        IspTopology::new(IspId(id), format!("L{id}"), pops, links, false).unwrap()
    }

    struct Fx {
        a: IspTopology,
        b: IspTopology,
        pair: IspPair,
    }

    fn fixture() -> Fx {
        let a = line(0, 3);
        let b = line(1, 3);
        let pair = IspPair::new(
            &a,
            &b,
            vec![
                Interconnection {
                    pop_a: PopId(0),
                    pop_b: PopId(0),
                    length_km: 0.0,
                },
                Interconnection {
                    pop_a: PopId(2),
                    pop_b: PopId(2),
                    length_km: 0.0,
                },
            ],
        )
        .unwrap();
        Fx { a, b, pair }
    }

    fn build(fx: &Fx) -> (PairFlows, PairFlows, Assignment, Assignment) {
        let view = PairView::new(&fx.a, &fx.b, &fx.pair);
        let sp_a = ShortestPaths::compute(&fx.a);
        let sp_b = ShortestPaths::compute(&fx.b);
        let fwd = PairFlows::build(&view, &sp_a, &sp_b, |_, _| 1.0);
        let fwd_default = Assignment::early_exit(&view, &sp_a, &fwd);
        let mut scratch = None;
        let rev_view = view.reversed(&mut scratch);
        let rev = PairFlows::build(&rev_view, &sp_b, &sp_a, |_, _| 1.0);
        let rev_default = Assignment::early_exit(&rev_view, &sp_b, &rev);
        (fwd, rev, fwd_default, rev_default)
    }

    #[test]
    fn both_better_never_hurts_either_isp() {
        let fx = fixture();
        let (fwd, rev, fwd_d, rev_d) = build(&fx);
        let input = OppositeFlows {
            fwd: &fwd,
            rev: &rev,
            fwd_default: &fwd_d,
            rev_default: &rev_d,
            num_pops_a: 3,
            num_pops_b: 3,
        };
        let (fa, ra) = flow_both_better(&input, 7);
        // ISP A's total distance (fwd upstream + rev downstream) must not
        // increase vs default; same for B.
        let a_dist = assignment::side_distance_km(&fwd, &fa, true)
            + assignment::side_distance_km(&rev, &ra, false);
        let a_dist_default = assignment::side_distance_km(&fwd, &fwd_d, true)
            + assignment::side_distance_km(&rev, &rev_d, false);
        assert!(a_dist <= a_dist_default + 1e-9);
        let b_dist = assignment::side_distance_km(&fwd, &fa, false)
            + assignment::side_distance_km(&rev, &ra, true);
        let b_dist_default = assignment::side_distance_km(&fwd, &fwd_d, false)
            + assignment::side_distance_km(&rev, &rev_d, true);
        assert!(b_dist <= b_dist_default + 1e-9);
    }

    #[test]
    fn strategies_are_seed_deterministic() {
        let fx = fixture();
        let (fwd, rev, fwd_d, rev_d) = build(&fx);
        let input = OppositeFlows {
            fwd: &fwd,
            rev: &rev,
            fwd_default: &fwd_d,
            rev_default: &rev_d,
            num_pops_a: 3,
            num_pops_b: 3,
        };
        let (f1, r1) = flow_pareto(&input, 42);
        let (f2, r2) = flow_pareto(&input, 42);
        assert_eq!(f1, f2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn pareto_superset_of_both_better() {
        // Every both-better candidate is also flow-Pareto; with a seed
        // where both pick defaults, results coincide. Structural check:
        // running both never panics and outputs valid ids.
        let fx = fixture();
        let (fwd, rev, fwd_d, rev_d) = build(&fx);
        let input = OppositeFlows {
            fwd: &fwd,
            rev: &rev,
            fwd_default: &fwd_d,
            rev_default: &rev_d,
            num_pops_a: 3,
            num_pops_b: 3,
        };
        for seed in 0..5 {
            let (fa, ra) = flow_pareto(&input, seed);
            let (fb, rb) = flow_both_better(&input, seed);
            for asg in [&fa, &fb] {
                assert!(asg.iter().all(|(_, c)| c.index() < 2));
            }
            for asg in [&ra, &rb] {
                assert!(asg.iter().all(|(_, c)| c.index() < 2));
            }
        }
    }
}
