//! Determinism suite for the churn driver: the same seed and event feed
//! must produce byte-identical results at every worker count, and any
//! event-prefix replay must equal a from-scratch cold rebuild.
//!
//! Wall-clock latency samples are inherently run-dependent, so the
//! cross-thread identity is asserted on the deterministic work series
//! (gain rows refreshed + negotiation rounds + LP pivots per event) —
//! the same sequence `ChurnReport` meters — plus the final assignments
//! and every path counter. The wall-clock CDFs are only checked for
//! shape (one sample per event).

use nexit_sim::churn::{
    self, ChurnConfig, ChurnDriver, ChurnEvent, ChurnPair, LogicalState, NegotiatedState, Objective,
};

/// Same seed + feed ⇒ byte-identical final assignments, work series and
/// path counters at 1, 2 and 4 worker threads — under both objectives.
#[test]
fn sweep_is_identical_across_thread_counts() {
    for objective in [Objective::Distance, Objective::Bandwidth] {
        let runs: Vec<_> = [1usize, 2, 4]
            .iter()
            .map(|&threads| churn::run(3, 40, threads, 9, objective))
            .collect();
        let reference = &runs[0];
        assert!(
            reference.violations.is_empty(),
            "[{}] violations: {:?}",
            objective.name(),
            reference.violations
        );
        assert_eq!(reference.divergences, 0);
        for run in &runs[1..] {
            assert_eq!(run.final_assignments, reference.final_assignments);
            assert_eq!(run.work, reference.work, "work series must be identical");
            assert_eq!(run.work.series(), reference.work.series());
            assert_eq!(run.cached_outcomes, reference.cached_outcomes);
            assert_eq!(run.incremental_sessions, reference.incremental_sessions);
            assert_eq!(run.fallback_sessions, reference.fallback_sessions);
            assert_eq!(run.signature_hits, reference.signature_hits);
            assert_eq!(run.signature_misses, reference.signature_misses);
            assert_eq!(run.rows_refreshed, reference.rows_refreshed);
            assert_eq!(run.rows_served, reference.rows_served);
            assert_eq!(run.rows_load_invalidated, reference.rows_load_invalidated);
            assert_eq!(run.lp_stats, reference.lp_stats);
            // Wall-clock values differ; the sample count may not.
            assert_eq!(run.latency.len(), reference.latency.len());
            assert!(
                run.violations.is_empty(),
                "[{}] violations: {:?}",
                objective.name(),
                run.violations
            );
            assert!(run.deterministic);
        }
    }
}

/// Same seed ⇒ the identical feed, twice in a row.
#[test]
fn feeds_are_reproducible() {
    let u = churn::universe();
    let idx = u.eligible_pairs(3, false)[0];
    let pair = ChurnPair::build(&u, idx, 2);
    let initial = churn::initial_active(&pair, 17);
    assert_eq!(initial, churn::initial_active(&pair, 17));
    let a = churn::generate_trace(&pair, &initial, 50, 17);
    let b = churn::generate_trace(&pair, &initial, 50, 17);
    assert_eq!(a, b);
}

/// Replay a prefix of `trace` through a fresh driver and return its
/// final negotiated state plus the logical state it ended in.
fn replay_prefix(
    pair: &ChurnPair<'_>,
    initial: &[bool],
    prefix: &[ChurnEvent],
    cfg: ChurnConfig,
) -> (NegotiatedState, LogicalState) {
    let mut driver = ChurnDriver::new(pair, initial.to_vec(), cfg);
    for event in prefix {
        driver.apply(event);
    }
    (driver.negotiated().clone(), driver.state().clone())
}

/// The property the whole module rests on: for every event prefix, the
/// incrementally maintained state equals the state a cold from-scratch
/// negotiation of the same logical state produces — byte-identical
/// assignments, identical gains and bookkeeping, LP objective within
/// 1e-6.
#[test]
fn every_prefix_replay_equals_the_cold_rebuild() {
    for objective in [Objective::Distance, Objective::Bandwidth] {
        let u = churn::universe();
        let idx = u.eligible_pairs(3, false)[0];
        let pair = ChurnPair::build(&u, idx, 2);
        let cfg = ChurnConfig {
            objective,
            ..ChurnConfig::default()
        };
        let initial = churn::initial_active(&pair, 33);
        let trace = churn::generate_trace(&pair, &initial, 18, 33);
        for len in 0..=trace.len() {
            let (incremental, state) = replay_prefix(&pair, &initial, &trace[..len], cfg);
            let (cold, _work) = churn::cold_rebuild(&pair, &state, &cfg);
            assert_eq!(
                incremental.assignment.choices(),
                cold.assignment.choices(),
                "[{}] assignment diverged after {len} event(s)",
                objective.name()
            );
            assert_eq!(
                (incremental.gain_a, incremental.gain_b),
                (cold.gain_a, cold.gain_b)
            );
            assert_eq!(incremental.termination, cold.termination);
            assert_eq!(incremental.reassignments, cold.reassignments);
            match (incremental.opt_t, cold.opt_t) {
                (Some(w), Some(c)) => assert!(
                    (w - c).abs() <= 1e-6,
                    "LP objective diverged after {len} event(s): warm {w} vs cold {c}"
                ),
                (w, c) => assert_eq!(w.is_some(), c.is_some(), "LP evaluated on one path only"),
            }
        }
    }
}
