//! The broker is a scheduler, not a second implementation: every pair it
//! serves must reach outcomes byte-identical to the in-process engine
//! ([`nexit_core::negotiate`]) run sequentially on the same session,
//! regardless of worker count. This suite pins that on real
//! topology-derived pairs (distance objective, borrowed mappers), and
//! checks fault isolation on the same workload: one faulty session fails
//! alone while its shard siblings still match the engine exactly. With
//! the ARQ reliability layer on, the same faulty workload must instead
//! *recover*: every session completes byte-identical to the engine at
//! any worker count, and a terminally dead link degrades to the default
//! assignment rather than losing the pair.

use nexit_broker::{Broker, BrokerConfig, PairOutcome, ReliableConfig, SessionSpec};
use nexit_core::{
    negotiate, DistanceMapper, NegotiationOutcome, NexitConfig, Party, SessionInput, Side,
};
use nexit_proto::channel::FaultConfig;
use nexit_proto::ProtoError;
use nexit_routing::{Assignment, FlowId, PairFlows};
use nexit_sim::PairData;
use nexit_topology::{GeneratorConfig, TopologyGenerator, Universe};
use nexit_workload::WorkloadModel;

fn universe() -> Universe {
    TopologyGenerator::new(GeneratorConfig {
        num_isps: 12,
        num_mesh_isps: 0,
        seed: 11,
        ..GeneratorConfig::default()
    })
    .generate()
}

fn session_input(flows: &PairFlows, default: &Assignment, alts: usize) -> SessionInput {
    SessionInput {
        flow_ids: (0..flows.len()).map(FlowId::new).collect(),
        defaults: default.choices().to_vec(),
        volumes: flows.flows.iter().map(|f| f.volume).collect(),
        num_alternatives: alts,
    }
}

/// All distance-eligible pairs of the test universe, fully built.
fn build_pairs(u: &Universe) -> Vec<PairData<'_>> {
    u.eligible_pairs(2, true)
        .into_iter()
        .map(|idx| {
            let pair = &u.pairs[idx];
            let a = &u.isps[pair.isp_a.index()];
            let b = &u.isps[pair.isp_b.index()];
            PairData::build(a, b, pair.clone(), WorkloadModel::Identical)
        })
        .collect()
}

fn spec_for<'a>(data: &'a PairData<'_>) -> SessionSpec<'a> {
    let alts = data.pair.num_interconnections();
    SessionSpec::honest(
        session_input(&data.flows, &data.default, alts),
        data.default.clone(),
        DistanceMapper::new(Side::A, &data.flows),
        DistanceMapper::new(Side::B, &data.flows),
        NexitConfig::win_win(),
    )
}

fn engine_reference(data: &PairData<'_>) -> NegotiationOutcome {
    let alts = data.pair.num_interconnections();
    let mut pa = Party::honest("A", DistanceMapper::new(Side::A, &data.flows));
    let mut pb = Party::honest("B", DistanceMapper::new(Side::B, &data.flows));
    negotiate(
        &session_input(&data.flows, &data.default, alts),
        &data.default,
        &mut pa,
        &mut pb,
        &NexitConfig::win_win(),
    )
}

fn assert_pair_matches(reference: &NegotiationOutcome, out: &PairOutcome, label: &str) {
    assert_eq!(
        reference.assignment.choices(),
        out.a.assignment.choices(),
        "{label}: broker assignment diverged from engine"
    );
    assert_eq!(
        out.a.assignment, out.b.assignment,
        "{label}: sides disagree"
    );
    assert_eq!(reference.gain_a, out.a.my_gain, "{label}: A gain");
    assert_eq!(reference.gain_b, out.b.my_gain, "{label}: B gain");
    assert_eq!(
        reference.termination, out.a.termination,
        "{label}: termination"
    );
    assert_eq!(
        reference.reassignments, out.a.reassignments,
        "{label}: reassignments"
    );
}

#[test]
fn broker_matches_engine_at_every_worker_count() {
    let u = universe();
    let pairs = build_pairs(&u);
    assert!(pairs.len() >= 4, "universe too small for a meaningful test");
    let references: Vec<_> = pairs.iter().map(engine_reference).collect();

    for workers in [1usize, 2, 4] {
        let specs: Vec<_> = pairs.iter().map(spec_for).collect();
        let run = Broker::new(BrokerConfig::with_workers(workers)).run_pairs(specs);
        assert_eq!(run.stats.completed, pairs.len(), "workers={workers}");
        assert_eq!(run.stats.failed, 0, "workers={workers}");
        for (i, result) in run.results.iter().enumerate() {
            let out = result.outcome().unwrap_or_else(|| {
                panic!(
                    "pair {i} failed under {workers} workers: {:?}",
                    result.failure()
                )
            });
            assert_pair_matches(&references[i], out, &format!("pair {i}, workers={workers}"));
        }
    }
}

#[test]
fn faulty_session_fails_alone_siblings_match_engine() {
    let u = universe();
    let pairs = build_pairs(&u);
    let references: Vec<_> = pairs.iter().map(engine_reference).collect();
    // Corrupt every frame of one victim pair; its shard siblings (all
    // pairs — single worker) must be byte-identical to the engine.
    let victim = pairs.len() / 2;
    let specs: Vec<_> = pairs
        .iter()
        .enumerate()
        .map(|(i, data)| {
            let spec = spec_for(data);
            if i == victim {
                spec.with_faults(
                    FaultConfig {
                        corrupt_chance: 1.0,
                        ..FaultConfig::RELIABLE
                    },
                    41,
                )
            } else {
                spec
            }
        })
        .collect();
    let run = Broker::new(BrokerConfig::with_workers(1)).run_pairs(specs);
    assert_eq!(run.stats.failed, 1, "exactly the victim fails");
    assert_eq!(run.stats.completed, pairs.len() - 1);
    let failure = run.results[victim].failure().expect("victim failed");
    assert!(
        matches!(failure.error, ProtoError::Frame(_) | ProtoError::Message(_)),
        "corruption must fail via CRC/validation, got {:?}",
        failure.error
    );
    for (i, result) in run.results.iter().enumerate() {
        if i == victim {
            continue;
        }
        assert_pair_matches(
            &references[i],
            result.outcome().expect("sibling completed"),
            &format!("sibling pair {i}"),
        );
    }
}

#[test]
fn dropped_frames_stall_only_their_session() {
    let u = universe();
    let pairs = build_pairs(&u);
    let references: Vec<_> = pairs.iter().map(engine_reference).collect();
    let victim = 0usize;
    let specs: Vec<_> = pairs
        .iter()
        .enumerate()
        .map(|(i, data)| {
            let spec = spec_for(data);
            if i == victim {
                spec.with_faults(
                    FaultConfig {
                        drop_chance: 1.0,
                        ..FaultConfig::RELIABLE
                    },
                    17,
                )
            } else {
                spec
            }
        })
        .collect();
    let run = Broker::new(BrokerConfig::with_workers(2)).run_pairs(specs);
    assert_eq!(run.stats.failed, 1);
    let failure = run.results[victim].failure().expect("victim failed");
    assert!(
        matches!(failure.error, ProtoError::Stalled { .. }),
        "total frame loss must surface as a stall, got {:?}",
        failure.error
    );
    for (i, result) in run.results.iter().enumerate() {
        if i == victim {
            continue;
        }
        assert_pair_matches(
            &references[i],
            result.outcome().expect("sibling completed"),
            &format!("sibling pair {i}"),
        );
    }
}

#[test]
fn arq_recovers_every_faulty_pair_at_every_worker_count() {
    // Real topology pairs, every link injecting all four fault kinds at
    // 5%: with the ARQ layer on, every session must complete with
    // outcomes byte-identical to the fault-free engine reference, and
    // identically at 1, 2 and 4 workers.
    let u = universe();
    let pairs = build_pairs(&u);
    let references: Vec<_> = pairs.iter().map(engine_reference).collect();
    let faults = FaultConfig {
        drop_chance: 0.05,
        corrupt_chance: 0.05,
        duplicate_chance: 0.05,
        reorder_chance: 0.05,
    };
    let mut recovered_counts = Vec::new();
    for workers in [1usize, 2, 4] {
        let specs: Vec<_> = pairs
            .iter()
            .enumerate()
            .map(|(i, data)| spec_for(data).with_faults(faults, 7000 + i as u64))
            .collect();
        let config =
            BrokerConfig::with_workers(workers).with_reliability(ReliableConfig::default());
        let run = Broker::new(config).run_pairs(specs);
        assert_eq!(run.stats.completed, pairs.len(), "workers={workers}");
        assert_eq!(run.stats.failed, 0, "workers={workers}");
        for (i, result) in run.results.iter().enumerate() {
            let out = result.outcome().unwrap_or_else(|| {
                panic!(
                    "pair {i} not recovered under {workers} workers: {:?}",
                    result.failure()
                )
            });
            assert_pair_matches(
                &references[i],
                out,
                &format!("recovered pair {i}, workers={workers}"),
            );
        }
        recovered_counts.push((run.stats.recovered, run.stats.retransmits));
    }
    // Fault patterns and recovery work are per-session seeded, so the
    // counters must not depend on scheduling either.
    assert_eq!(recovered_counts[0], recovered_counts[1]);
    assert_eq!(recovered_counts[0], recovered_counts[2]);
    assert!(
        recovered_counts[0].0 > 0,
        "5% fault rates must hit sessions"
    );
}

#[test]
fn dead_link_degrades_to_default_assignment_with_siblings_intact() {
    // One pair's links drop everything; with ARQ + degradation on, that
    // pair falls back to its default early-exit assignment while every
    // sibling still negotiates byte-identical to the engine. No pair is
    // ever lost: negotiated + degraded accounts for the whole batch.
    let u = universe();
    let pairs = build_pairs(&u);
    let references: Vec<_> = pairs.iter().map(engine_reference).collect();
    let victim = pairs.len() / 2;
    let specs: Vec<_> = pairs
        .iter()
        .enumerate()
        .map(|(i, data)| {
            let spec = spec_for(data);
            if i == victim {
                spec.with_faults(
                    FaultConfig {
                        drop_chance: 1.0,
                        ..FaultConfig::RELIABLE
                    },
                    83,
                )
            } else {
                spec
            }
        })
        .collect();
    let config = BrokerConfig::with_workers(2)
        .with_reliability(ReliableConfig::default())
        .with_degradation();
    let run = Broker::new(config).run_pairs(specs);
    assert_eq!(run.stats.completed, pairs.len() - 1);
    assert_eq!(run.stats.degraded, 1);
    assert_eq!(run.stats.failed, 0);
    assert!(run.results[victim].is_degraded());
    assert_eq!(
        run.results[victim].assignment().unwrap(),
        &pairs[victim].default,
        "degraded pair must carry its default assignment"
    );
    assert!(
        matches!(
            run.results[victim].failure().unwrap().error,
            ProtoError::RetryExhausted { .. }
        ),
        "a fully dead link should exhaust the retry budget"
    );
    for (i, result) in run.results.iter().enumerate() {
        if i == victim {
            continue;
        }
        assert_pair_matches(
            &references[i],
            result.outcome().expect("sibling negotiated"),
            &format!("sibling pair {i}"),
        );
    }
}
