//! The parallel sweep contract: experiment output is byte-identical for
//! every thread count. Each driver collects per-pair results by pair
//! index, so scheduling can never reorder or perturb them — these tests
//! pin that with exact (bitwise) `f64` equality between `threads = 1`
//! and `threads = 4` runs.

use nexit_sim::experiments::{ablation, bandwidth, cheating, distance, diverse, filters};
use nexit_sim::ExpConfig;
use nexit_topology::{GeneratorConfig, TopologyGenerator, Universe};

fn small_universe() -> Universe {
    TopologyGenerator::new(GeneratorConfig {
        num_isps: 16,
        num_mesh_isps: 1,
        seed: 11,
        ..GeneratorConfig::default()
    })
    .generate()
}

fn cfg(threads: usize) -> ExpConfig {
    ExpConfig {
        max_pairs: Some(6),
        max_failures_per_pair: 2,
        max_lp_variables: 2_000,
        threads,
        ..ExpConfig::default()
    }
}

#[test]
fn distance_results_are_thread_count_independent() {
    let u = small_universe();
    let serial = distance::run(&u, &cfg(1));
    let parallel = distance::run(&u, &cfg(4));
    assert!(serial.pairs > 0, "universe must yield eligible pairs");
    assert_eq!(serial, parallel);
}

#[test]
fn bandwidth_results_are_thread_count_independent() {
    // The arena-threaded, warm-started sweep must stay byte-identical
    // for threads = 1, 2 and 4: the LP session is pair-scoped (warm
    // state never crosses pairs, so scheduling cannot perturb it) and
    // the worker arenas only recycle buffers, never values.
    let u = small_universe();
    let serial = bandwidth::run(&u, &cfg(1));
    for threads in [2, 4] {
        let parallel = bandwidth::run(&u, &cfg(threads));
        assert_eq!(serial, parallel, "threads = {threads}");
    }
    assert!(serial.scenarios > 0, "sweep must evaluate scenarios");
}

#[test]
fn growth_sweep_is_thread_count_independent_and_monotone() {
    let u = small_universe();
    let factors = [1.1, 1.5];
    let serial = bandwidth::run_growth(&u, &cfg(1), &factors);
    let parallel = bandwidth::run_growth(&u, &cfg(4), &factors);
    assert_eq!(serial, parallel);
    assert!(serial.scenarios > 0);
    // Growing the background load can never shrink the optimal MEL.
    for samples in &serial.degradation {
        assert!(samples.iter().all(|&r| r >= 1.0 - 1e-9));
    }
}

#[test]
fn cheating_results_are_thread_count_independent() {
    let u = small_universe();
    assert_eq!(
        cheating::run_distance(&u, &cfg(1)),
        cheating::run_distance(&u, &cfg(4))
    );
    assert_eq!(
        cheating::run_bandwidth(&u, &cfg(1)),
        cheating::run_bandwidth(&u, &cfg(4))
    );
}

#[test]
fn diverse_and_filter_results_are_thread_count_independent() {
    let u = small_universe();
    assert_eq!(diverse::run(&u, &cfg(1)), diverse::run(&u, &cfg(4)));
    assert_eq!(filters::run(&u, &cfg(1)), filters::run(&u, &cfg(4)));
}

#[test]
fn model_grid_is_thread_count_independent_and_reuses_skeletons() {
    let u = small_universe();
    let serial = ablation::model_grid(&u, &cfg(1));
    for threads in [2, 4] {
        let parallel = ablation::model_grid(&u, &cfg(threads));
        assert_eq!(serial, parallel, "threads = {threads}");
    }
    assert!(!serial.rows.is_empty(), "grid must produce rows");
    // The tentpole guarantee: the grid's coefficient-patched re-solves
    // actually reuse the per-pair skeletons (column refresh against the
    // retained factorization), instead of silently cold-starting every
    // cell.
    let stats = serial.lp_stats;
    assert!(
        stats.refresh_solves > stats.cold_solves,
        "most grid cells must re-enter warm: {stats:?}"
    );
}

/// The bandwidth and Fortz mappers fan their per-flow cost loops across
/// `par_flows` workers after snapshotting the shared load vector; the
/// gain tables must be byte-identical for threads 1, 2 and 4.
#[test]
fn threaded_mapper_fills_are_byte_identical() {
    use nexit_core::{
        BandwidthMapper, FortzMapper, GainTable, PreferenceMapper, SessionInput, Side,
    };
    use nexit_routing::FlowId;
    use nexit_sim::experiments::bandwidth::PairFailureSweep;
    use nexit_workload::CapacityModel;

    let u = small_universe();
    let pair_idx = u.eligible_pairs(3, false)[0];
    let sweep = PairFailureSweep::build(&u, pair_idx, &cfg(1), &CapacityModel::default());
    let scenario = &sweep.scenarios[0];
    let data = &scenario.data;
    let input = SessionInput {
        flow_ids: (0..data.flows.len()).map(FlowId::new).collect(),
        defaults: data.default.choices().to_vec(),
        volumes: data.flows.flows.iter().map(|f| f.volume).collect(),
        num_alternatives: data.pair.num_interconnections(),
    };
    let fill = |mapper: &mut dyn PreferenceMapper| {
        let mut out = GainTable::new(input.len(), input.num_alternatives);
        mapper.gains(&input, &data.default, &mut out);
        out
    };
    for side in [Side::A, Side::B] {
        let caps = if side == Side::A {
            &scenario.caps_up
        } else {
            &scenario.caps_down
        };
        let bw_serial = fill(&mut BandwidthMapper::new(
            side,
            &data.flows,
            &data.paths,
            caps,
        ));
        let fz_serial = fill(&mut FortzMapper::new(side, &data.flows, &data.paths, caps));
        assert!(
            bw_serial.values().iter().any(|&g| g != 0.0),
            "bandwidth gains must be non-trivial for the comparison to mean anything"
        );
        for threads in [2, 4] {
            let bw = fill(
                &mut BandwidthMapper::new(side, &data.flows, &data.paths, caps)
                    .with_threads(threads),
            );
            let fz = fill(
                &mut FortzMapper::new(side, &data.flows, &data.paths, caps).with_threads(threads),
            );
            let bits = |t: &GainTable| t.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&bw_serial),
                bits(&bw),
                "bandwidth mapper, {side:?}, {threads} threads"
            );
            assert_eq!(
                bits(&fz_serial),
                bits(&fz),
                "fortz mapper, {side:?}, {threads} threads"
            );
        }
    }
}

#[test]
fn ablation_sweeps_are_thread_count_independent() {
    let u = small_universe();
    let ranges = [1, 10];
    let serial = ablation::preference_range_sweep(&u, &cfg(1), &ranges);
    let parallel = ablation::preference_range_sweep(&u, &cfg(4), &ranges);
    assert_eq!(serial, parallel);
    let groups = [1, 4];
    assert_eq!(
        ablation::group_sweep(&u, &cfg(1), &groups),
        ablation::group_sweep(&u, &cfg(4), &groups)
    );
    let serial_modes = ablation::mode_comparison(&u, &cfg(1));
    let parallel_modes = ablation::mode_comparison(&u, &cfg(4));
    assert_eq!(serial_modes, parallel_modes);
}
