//! The parallel sweep contract: experiment output is byte-identical for
//! every thread count. Each driver collects per-pair results by pair
//! index, so scheduling can never reorder or perturb them — these tests
//! pin that with exact (bitwise) `f64` equality between `threads = 1`
//! and `threads = 4` runs.

use nexit_sim::experiments::{ablation, bandwidth, cheating, distance, diverse, filters};
use nexit_sim::ExpConfig;
use nexit_topology::{GeneratorConfig, TopologyGenerator, Universe};

fn small_universe() -> Universe {
    TopologyGenerator::new(GeneratorConfig {
        num_isps: 16,
        num_mesh_isps: 1,
        seed: 11,
        ..GeneratorConfig::default()
    })
    .generate()
}

fn cfg(threads: usize) -> ExpConfig {
    ExpConfig {
        max_pairs: Some(6),
        max_failures_per_pair: 2,
        max_lp_variables: 2_000,
        threads,
        ..ExpConfig::default()
    }
}

#[test]
fn distance_results_are_thread_count_independent() {
    let u = small_universe();
    let serial = distance::run(&u, &cfg(1));
    let parallel = distance::run(&u, &cfg(4));
    assert!(serial.pairs > 0, "universe must yield eligible pairs");
    assert_eq!(serial, parallel);
}

#[test]
fn bandwidth_results_are_thread_count_independent() {
    // The arena-threaded, warm-started sweep must stay byte-identical
    // for threads = 1, 2 and 4: the LP session is pair-scoped (warm
    // state never crosses pairs, so scheduling cannot perturb it) and
    // the worker arenas only recycle buffers, never values.
    let u = small_universe();
    let serial = bandwidth::run(&u, &cfg(1));
    for threads in [2, 4] {
        let parallel = bandwidth::run(&u, &cfg(threads));
        assert_eq!(serial, parallel, "threads = {threads}");
    }
    assert!(serial.scenarios > 0, "sweep must evaluate scenarios");
}

#[test]
fn growth_sweep_is_thread_count_independent_and_monotone() {
    let u = small_universe();
    let factors = [1.1, 1.5];
    let serial = bandwidth::run_growth(&u, &cfg(1), &factors);
    let parallel = bandwidth::run_growth(&u, &cfg(4), &factors);
    assert_eq!(serial, parallel);
    assert!(serial.scenarios > 0);
    // Growing the background load can never shrink the optimal MEL.
    for samples in &serial.degradation {
        assert!(samples.iter().all(|&r| r >= 1.0 - 1e-9));
    }
}

#[test]
fn cheating_results_are_thread_count_independent() {
    let u = small_universe();
    assert_eq!(
        cheating::run_distance(&u, &cfg(1)),
        cheating::run_distance(&u, &cfg(4))
    );
    assert_eq!(
        cheating::run_bandwidth(&u, &cfg(1)),
        cheating::run_bandwidth(&u, &cfg(4))
    );
}

#[test]
fn diverse_and_filter_results_are_thread_count_independent() {
    let u = small_universe();
    assert_eq!(diverse::run(&u, &cfg(1)), diverse::run(&u, &cfg(4)));
    assert_eq!(filters::run(&u, &cfg(1)), filters::run(&u, &cfg(4)));
}

#[test]
fn ablation_sweeps_are_thread_count_independent() {
    let u = small_universe();
    let ranges = [1, 10];
    let serial = ablation::preference_range_sweep(&u, &cfg(1), &ranges);
    let parallel = ablation::preference_range_sweep(&u, &cfg(4), &ranges);
    assert_eq!(serial, parallel);
    let groups = [1, 4];
    assert_eq!(
        ablation::group_sweep(&u, &cfg(1), &groups),
        ablation::group_sweep(&u, &cfg(4), &groups)
    );
    let serial_modes = ablation::mode_comparison(&u, &cfg(1));
    let parallel_modes = ablation::mode_comparison(&u, &cfg(4));
    assert_eq!(serial_modes, parallel_modes);
}
