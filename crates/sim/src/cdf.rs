//! Cumulative distribution functions for experiment reporting.
//!
//! Every figure in the paper is a CDF ("cumulative % of ISP pairs / flows
//! / failed links" on the y-axis). [`Cdf`] collects samples and emits the
//! same series: the x-value at each cumulative percentage.
//!
//! [`Cdf`] keeps every sample, which is fine for per-pair series (one
//! sample per ISP pair) but not for per-flow series at full paper scale:
//! `flow_negotiated` is ~pops² samples *per pair* across hundreds of
//! pairs. [`StreamingCdf`] is the bounded-memory drop-in for those — a
//! deterministic mergeable quantile sketch that is **exact** while the
//! stream fits its capacity and degrades to weighted-centroid
//! interpolation beyond it.

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (non-finite samples are rejected).
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|s| s.is_finite()),
            "CDF samples must be finite"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The x-value below which `pct` percent of samples fall
    /// (nearest-rank percentile). Panics on an empty CDF or `pct` outside
    /// `[0, 100]`.
    pub fn percentile(&self, pct: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "percentile of empty CDF");
        assert!((0.0..=100.0).contains(&pct), "pct out of range: {pct}");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let rank = (pct / 100.0) * (self.sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Fraction of samples `<= x`, in percent.
    pub fn cumulative_at(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&s| s <= x);
        100.0 * count as f64 / self.sorted.len().max(1) as f64
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("empty CDF")
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("empty CDF")
    }

    /// The standard report series: x-values at 5% steps, matching how the
    /// paper's curves are read off.
    pub fn series(&self) -> Vec<(f64, f64)> {
        (0..=20)
            .map(|i| {
                let pct = i as f64 * 5.0;
                (pct, self.percentile(pct))
            })
            .collect()
    }

    /// Print the series as aligned rows with a label.
    pub fn print(&self, label: &str) {
        if self.is_empty() {
            println!("{label}: (no samples)");
            return;
        }
        println!("{label} (n={}):", self.len());
        println!("  cumulative%      x");
        for (pct, x) in self.series() {
            println!("  {pct:10.0} {x:10.3}");
        }
    }
}

/// Default centroid budget of a [`StreamingCdf`]: at 16 bytes per
/// centroid this bounds a sketch at 64 KiB regardless of stream length,
/// while staying exact for any series the tests and small experiments
/// produce.
pub const DEFAULT_SKETCH_CAPACITY: usize = 4096;

/// A bounded-memory streaming quantile sketch.
///
/// Samples are held as sorted `(value, weight)` centroids plus a small
/// unsorted buffer of recent pushes (folded in batch, so a push is
/// amortized O(log capacity) instead of a per-sample sorted insert).
/// While no compaction has run, every sample is its own unit-weight
/// centroid and every quantile query returns **exactly** what [`Cdf`]
/// over the same samples would (same nearest-rank interpolation
/// arithmetic; pinned by a test). Once the stream outgrows the centroid
/// budget, adjacent centroids are pairwise-merged into weighted means —
/// memory stays bounded, the true min/max are kept exactly, quantiles
/// interpolate between centroid mean-ranks, and [`StreamingCdf::is_exact`]
/// reports the degradation (it survives [`StreamingCdf::merge`]: folding
/// in an already-compacted sketch marks the result inexact too).
///
/// Everything is deterministic in the insertion sequence (no sampling,
/// no randomness), so experiment output stays byte-identical across
/// thread counts as long as streams are pushed in pair order.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingCdf {
    /// Sorted ascending by value; parallel arrays (flat, cache-friendly).
    values: Vec<f64>,
    weights: Vec<f64>,
    /// Unit-weight samples awaiting the next batched fold.
    pending: Vec<f64>,
    /// Centroid budget; a fold compacts down to it whenever the merged
    /// centroid count would exceed it.
    capacity: usize,
    count: u64,
    min: f64,
    max: f64,
    /// False as soon as any compaction has merged samples into means —
    /// whether here or in a sketch this one absorbed via `merge`.
    exact: bool,
}

impl Default for StreamingCdf {
    fn default() -> Self {
        Self::new(DEFAULT_SKETCH_CAPACITY)
    }
}

impl StreamingCdf {
    /// An empty sketch with room for `capacity` centroids (>= 2).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "need at least two centroids");
        Self {
            values: Vec::new(),
            weights: Vec::new(),
            pending: Vec::new(),
            capacity,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            exact: true,
        }
    }

    /// Add one sample (non-finite samples are rejected, like [`Cdf`]).
    /// Amortized O(log capacity): samples batch in an unsorted buffer
    /// and fold into the sorted centroids once per `capacity` pushes.
    pub fn push(&mut self, sample: f64) {
        assert!(sample.is_finite(), "CDF samples must be finite");
        self.count += 1;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
        self.pending.push(sample);
        if self.pending.len() >= self.capacity {
            self.fold();
        }
    }

    /// Add every sample of an iterator.
    pub fn extend(&mut self, samples: impl IntoIterator<Item = f64>) {
        for s in samples {
            self.push(s);
        }
    }

    /// Fold another sketch into this one (used to combine per-pair
    /// sketches in pair order). Absorbing an already-compacted sketch
    /// marks this one inexact as well.
    pub fn merge(&mut self, other: &StreamingCdf) {
        self.exact &= other.exact;
        for (&v, &w) in other.values.iter().zip(&other.weights) {
            if w == 1.0 {
                // A unit centroid is just a sample (and in an exact
                // sketch they all are): take the cheap batched path.
                self.push(v);
            } else {
                // Weighted centroids only exist in compacted sketches —
                // rare; a sorted insert is fine here.
                self.count += w as u64;
                let at = self.values.partition_point(|&x| x <= v);
                self.values.insert(at, v);
                self.weights.insert(at, w);
                if self.values.len() > self.capacity {
                    self.fold();
                }
            }
        }
        for &v in &other.pending {
            self.push(v);
        }
        // min/max honor the other sketch's exact extremes (its interior
        // centroids may already be merged means).
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Sort the pending batch, merge it into the centroids, and compact
    /// back down to the budget if the merge overflowed it.
    fn fold(&mut self) {
        if !self.pending.is_empty() {
            self.pending
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            let mut out_v = Vec::with_capacity(self.values.len() + self.pending.len());
            let mut out_w = Vec::with_capacity(out_v.capacity());
            let (mut i, mut j) = (0, 0);
            while i < self.values.len() || j < self.pending.len() {
                let take_centroid = j >= self.pending.len()
                    || (i < self.values.len() && self.values[i] <= self.pending[j]);
                if take_centroid {
                    out_v.push(self.values[i]);
                    out_w.push(self.weights[i]);
                    i += 1;
                } else {
                    out_v.push(self.pending[j]);
                    out_w.push(1.0);
                    j += 1;
                }
            }
            self.values = out_v;
            self.weights = out_w;
            self.pending.clear();
        }
        while self.values.len() > self.capacity {
            self.compact_once();
            self.exact = false;
        }
    }

    /// Halve the centroid count by merging adjacent pairs into their
    /// weighted means. Exactness ends here; rank error stays bounded
    /// because merges are always between value-adjacent centroids.
    fn compact_once(&mut self) {
        let n = self.values.len();
        let mut out_v = Vec::with_capacity(n / 2 + 1);
        let mut out_w = Vec::with_capacity(n / 2 + 1);
        let mut i = 0;
        while i < n {
            if i + 1 < n {
                let (w0, w1) = (self.weights[i], self.weights[i + 1]);
                let w = w0 + w1;
                out_v.push((self.values[i] * w0 + self.values[i + 1] * w1) / w);
                out_w.push(w);
                i += 2;
            } else {
                out_v.push(self.values[i]);
                out_w.push(self.weights[i]);
                i += 1;
            }
        }
        self.values = out_v;
        self.weights = out_w;
    }

    /// The sorted `(values, weights)` view including any pending batch
    /// (query-time only; pushes never pay for this).
    fn canonical(&self) -> (Vec<f64>, Vec<f64>) {
        let mut pend = self.pending.clone();
        pend.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let mut out_v = Vec::with_capacity(self.values.len() + pend.len());
        let mut out_w = Vec::with_capacity(out_v.capacity());
        let (mut i, mut j) = (0, 0);
        while i < self.values.len() || j < pend.len() {
            let take_centroid =
                j >= pend.len() || (i < self.values.len() && self.values[i] <= pend[j]);
            if take_centroid {
                out_v.push(self.values[i]);
                out_w.push(self.weights[i]);
                i += 1;
            } else {
                out_v.push(pend[j]);
                out_w.push(1.0);
                j += 1;
            }
        }
        (out_v, out_w)
    }

    /// Number of samples pushed (not centroids held).
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when no sample was pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether every quantile is still exact: no compaction has merged
    /// samples into means, in this sketch or in any sketch it absorbed
    /// via [`StreamingCdf::merge`].
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Smallest sample (exact even after compaction).
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "empty sketch");
        self.min
    }

    /// Largest sample (exact even after compaction).
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "empty sketch");
        self.max
    }

    /// The x-value below which `pct` percent of samples fall. Matches
    /// [`Cdf::percentile`] exactly while the sketch is exact; past
    /// compaction, interpolates between centroid mean-ranks.
    pub fn percentile(&self, pct: f64) -> f64 {
        // Queries fold the pending batch into a temporary sorted view;
        // pushes never pay for sorting.
        let folded;
        let (values, weights): (&[f64], &[f64]) = if self.pending.is_empty() {
            (&self.values, &self.weights)
        } else {
            folded = self.canonical();
            (&folded.0, &folded.1)
        };
        self.percentile_over(values, weights, pct)
    }

    /// [`StreamingCdf::percentile`] over an already-folded view, so bulk
    /// queries ([`StreamingCdf::series`]) fold once, not per point.
    fn percentile_over(&self, values: &[f64], weights: &[f64], pct: f64) -> f64 {
        assert!(self.count > 0, "percentile of empty sketch");
        assert!((0.0..=100.0).contains(&pct), "pct out of range: {pct}");
        if self.count == 1 {
            return self.min;
        }
        let target = (pct / 100.0) * (self.count - 1) as f64;
        // Anchor each centroid at the mean rank of the samples it
        // absorbed: `cum_before + (w - 1) / 2`. With unit weights that is
        // exactly rank `i`, reproducing the full-vector interpolation
        // arithmetic bit for bit. The exact extremes bracket the walk so
        // pct 0 / 100 always return the true min / max.
        let (mut prev_anchor, mut prev_value) = (0.0, self.min);
        let mut cum = 0.0;
        for (&v, &w) in values.iter().zip(weights) {
            let anchor = cum + (w - 1.0) / 2.0;
            if target <= anchor {
                if anchor <= prev_anchor {
                    return v; // degenerate leading anchor (rank 0)
                }
                let frac = (target - prev_anchor) / (anchor - prev_anchor);
                return prev_value * (1.0 - frac) + v * frac;
            }
            (prev_anchor, prev_value) = (anchor, v);
            cum += w;
        }
        // Past the last centroid anchor: climb to the exact maximum.
        let last = (self.count - 1) as f64;
        if last > prev_anchor {
            let frac = (target - prev_anchor) / (last - prev_anchor);
            return prev_value * (1.0 - frac) + self.max * frac;
        }
        self.max
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// The standard report series: x-values at 5% steps (same shape as
    /// [`Cdf::series`]). Folds the pending batch once for all 21 points.
    pub fn series(&self) -> Vec<(f64, f64)> {
        let folded;
        let (values, weights): (&[f64], &[f64]) = if self.pending.is_empty() {
            (&self.values, &self.weights)
        } else {
            folded = self.canonical();
            (&folded.0, &folded.1)
        };
        (0..=20)
            .map(|i| {
                let pct = i as f64 * 5.0;
                (pct, self.percentile_over(values, weights, pct))
            })
            .collect()
    }

    /// Print the series as aligned rows with a label.
    pub fn print(&self, label: &str) {
        if self.is_empty() {
            println!("{label}: (no samples)");
            return;
        }
        let note = if self.is_exact() { "" } else { ", sketched" };
        println!("{label} (n={}{note}):", self.len());
        println!("  cumulative%      x");
        for (pct, x) in self.series() {
            println!("  {pct:10.0} {x:10.3}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_uniform_ramp() {
        let cdf = Cdf::new((0..=100).map(|i| i as f64).collect());
        assert_eq!(cdf.percentile(0.0), 0.0);
        assert_eq!(cdf.percentile(50.0), 50.0);
        assert_eq!(cdf.percentile(100.0), 100.0);
        assert_eq!(cdf.median(), 50.0);
        assert_eq!(cdf.min(), 0.0);
        assert_eq!(cdf.max(), 100.0);
    }

    #[test]
    fn interpolation_between_ranks() {
        let cdf = Cdf::new(vec![0.0, 10.0]);
        assert!((cdf.percentile(50.0) - 5.0).abs() < 1e-9);
        assert!((cdf.percentile(25.0) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn cumulative_at_inverts() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.cumulative_at(0.5), 0.0);
        assert_eq!(cdf.cumulative_at(2.0), 50.0);
        assert_eq!(cdf.cumulative_at(10.0), 100.0);
    }

    #[test]
    fn single_sample() {
        let cdf = Cdf::new(vec![7.0]);
        assert_eq!(cdf.percentile(0.0), 7.0);
        assert_eq!(cdf.percentile(100.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Cdf::new(vec![f64::NAN]);
    }

    #[test]
    fn series_has_21_points() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0]);
        let s = cdf.series();
        assert_eq!(s.len(), 21);
        assert_eq!(s[0].0, 0.0);
        assert_eq!(s[20].0, 100.0);
    }

    #[test]
    fn sketch_is_exact_below_capacity() {
        // The satellite contract: while the stream fits the sketch, the
        // streaming path is indistinguishable from the full-vector path
        // — including at plateaus (repeated values) and extremes.
        let samples = vec![3.0, 1.0, 1.0, 2.0, 5.0, 2.0, 2.0, -4.0];
        let cdf = Cdf::new(samples.clone());
        let mut sketch = StreamingCdf::new(16);
        sketch.extend(samples);
        assert!(sketch.is_exact());
        for pct in [0.0, 12.5, 33.0, 50.0, 66.6, 90.0, 100.0] {
            assert_eq!(
                sketch.percentile(pct).to_bits(),
                cdf.percentile(pct).to_bits(),
                "diverged at pct {pct}"
            );
        }
        assert_eq!(sketch.min(), cdf.min());
        assert_eq!(sketch.max(), cdf.max());
        assert_eq!(sketch.series(), cdf.series());
    }

    #[test]
    fn sketch_memory_is_bounded_and_stays_accurate() {
        let mut sketch = StreamingCdf::new(64);
        // 10k samples of a deterministic ramp with shuffle-ish ordering.
        let n = 10_000u64;
        for i in 0..n {
            let x = ((i * 7919) % n) as f64; // a permutation of 0..n
            sketch.push(x);
        }
        assert!(!sketch.is_exact());
        assert_eq!(sketch.len(), n);
        assert!(sketch.values.len() <= 64, "memory bound violated");
        // Exact extremes survive compaction.
        assert_eq!(sketch.min(), 0.0);
        assert_eq!(sketch.max(), (n - 1) as f64);
        // Interior quantiles of the uniform ramp stay within a few
        // percent despite 150x compression.
        for pct in [10.0, 25.0, 50.0, 75.0, 90.0] {
            let truth = pct / 100.0 * (n - 1) as f64;
            let got = sketch.percentile(pct);
            assert!(
                (got - truth).abs() < 0.05 * (n as f64),
                "pct {pct}: {got} vs {truth}"
            );
        }
    }

    #[test]
    fn merging_a_compacted_sketch_reports_inexact() {
        // A compacted donor holds interpolated means; a small receiver
        // absorbing it must not claim exactness just because its own
        // count fits the budget.
        let mut donor = StreamingCdf::new(8);
        donor.extend((0..100).map(f64::from));
        assert!(!donor.is_exact());
        let mut receiver = StreamingCdf::new(4096);
        receiver.push(5.0);
        receiver.merge(&donor);
        assert!(!receiver.is_exact(), "inexactness must survive merge");
        // Extremes still exact through the merge.
        assert_eq!(receiver.min(), 0.0);
        assert_eq!(receiver.max(), 99.0);
        assert_eq!(receiver.len(), 101);
    }

    #[test]
    fn sketch_merge_in_order_matches_one_stream() {
        // Per-pair sketches merged in pair order must equal one sketch
        // fed the concatenated stream (what the serial loop would do).
        let chunks = [
            vec![5.0, -2.0, 7.5],
            vec![0.25, 5.0],
            vec![-9.0, 3.0, 3.0, 11.0],
        ];
        let mut merged = StreamingCdf::new(32);
        let mut direct = StreamingCdf::new(32);
        for chunk in &chunks {
            let mut per_pair = StreamingCdf::new(32);
            per_pair.extend(chunk.iter().copied());
            merged.merge(&per_pair);
            direct.extend(chunk.iter().copied());
        }
        assert_eq!(merged, direct);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn sketch_matches_full_vector_exactly_under_capacity(
                samples in proptest::collection::vec(-1e6f64..1e6, 1..200),
                p in 0.0f64..100.0,
            ) {
                let cdf = Cdf::new(samples.clone());
                let mut sketch = StreamingCdf::new(256);
                sketch.extend(samples);
                prop_assert!(sketch.is_exact());
                prop_assert_eq!(
                    sketch.percentile(p).to_bits(),
                    cdf.percentile(p).to_bits()
                );
            }

            #[test]
            fn sketch_percentile_is_monotone_and_in_range(
                samples in proptest::collection::vec(-1e3f64..1e3, 1..400),
                p1 in 0.0f64..100.0,
                p2 in 0.0f64..100.0,
            ) {
                // Tiny capacity: force heavy compaction, then check the
                // structural quantile guarantees still hold.
                let mut sketch = StreamingCdf::new(8);
                sketch.extend(samples);
                let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
                prop_assert!(sketch.percentile(lo) <= sketch.percentile(hi) + 1e-9);
                prop_assert!(sketch.percentile(lo) >= sketch.min() - 1e-9);
                prop_assert!(sketch.percentile(hi) <= sketch.max() + 1e-9);
            }

            #[test]
            fn percentile_is_monotone(
                samples in proptest::collection::vec(-1e6f64..1e6, 1..200),
                p1 in 0.0f64..100.0,
                p2 in 0.0f64..100.0,
            ) {
                let cdf = Cdf::new(samples);
                let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
                prop_assert!(cdf.percentile(lo) <= cdf.percentile(hi) + 1e-9);
            }

            #[test]
            fn percentile_within_sample_range(
                samples in proptest::collection::vec(-1e6f64..1e6, 1..200),
                p in 0.0f64..100.0,
            ) {
                let cdf = Cdf::new(samples);
                let v = cdf.percentile(p);
                prop_assert!(v >= cdf.min() - 1e-9 && v <= cdf.max() + 1e-9);
            }
        }
    }
}
