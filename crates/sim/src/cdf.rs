//! Cumulative distribution functions for experiment reporting.
//!
//! Every figure in the paper is a CDF ("cumulative % of ISP pairs / flows
//! / failed links" on the y-axis). [`Cdf`] collects samples and emits the
//! same series: the x-value at each cumulative percentage.

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (non-finite samples are rejected).
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|s| s.is_finite()),
            "CDF samples must be finite"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The x-value below which `pct` percent of samples fall
    /// (nearest-rank percentile). Panics on an empty CDF or `pct` outside
    /// `[0, 100]`.
    pub fn percentile(&self, pct: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "percentile of empty CDF");
        assert!((0.0..=100.0).contains(&pct), "pct out of range: {pct}");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let rank = (pct / 100.0) * (self.sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Fraction of samples `<= x`, in percent.
    pub fn cumulative_at(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&s| s <= x);
        100.0 * count as f64 / self.sorted.len().max(1) as f64
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("empty CDF")
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("empty CDF")
    }

    /// The standard report series: x-values at 5% steps, matching how the
    /// paper's curves are read off.
    pub fn series(&self) -> Vec<(f64, f64)> {
        (0..=20)
            .map(|i| {
                let pct = i as f64 * 5.0;
                (pct, self.percentile(pct))
            })
            .collect()
    }

    /// Print the series as aligned rows with a label.
    pub fn print(&self, label: &str) {
        if self.is_empty() {
            println!("{label}: (no samples)");
            return;
        }
        println!("{label} (n={}):", self.len());
        println!("  cumulative%      x");
        for (pct, x) in self.series() {
            println!("  {pct:10.0} {x:10.3}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_uniform_ramp() {
        let cdf = Cdf::new((0..=100).map(|i| i as f64).collect());
        assert_eq!(cdf.percentile(0.0), 0.0);
        assert_eq!(cdf.percentile(50.0), 50.0);
        assert_eq!(cdf.percentile(100.0), 100.0);
        assert_eq!(cdf.median(), 50.0);
        assert_eq!(cdf.min(), 0.0);
        assert_eq!(cdf.max(), 100.0);
    }

    #[test]
    fn interpolation_between_ranks() {
        let cdf = Cdf::new(vec![0.0, 10.0]);
        assert!((cdf.percentile(50.0) - 5.0).abs() < 1e-9);
        assert!((cdf.percentile(25.0) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn cumulative_at_inverts() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.cumulative_at(0.5), 0.0);
        assert_eq!(cdf.cumulative_at(2.0), 50.0);
        assert_eq!(cdf.cumulative_at(10.0), 100.0);
    }

    #[test]
    fn single_sample() {
        let cdf = Cdf::new(vec![7.0]);
        assert_eq!(cdf.percentile(0.0), 7.0);
        assert_eq!(cdf.percentile(100.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Cdf::new(vec![f64::NAN]);
    }

    #[test]
    fn series_has_21_points() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0]);
        let s = cdf.series();
        assert_eq!(s.len(), 21);
        assert_eq!(s[0].0, 0.0);
        assert_eq!(s[20].0, 100.0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn percentile_is_monotone(
                samples in proptest::collection::vec(-1e6f64..1e6, 1..200),
                p1 in 0.0f64..100.0,
                p2 in 0.0f64..100.0,
            ) {
                let cdf = Cdf::new(samples);
                let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
                prop_assert!(cdf.percentile(lo) <= cdf.percentile(hi) + 1e-9);
            }

            #[test]
            fn percentile_within_sample_range(
                samples in proptest::collection::vec(-1e6f64..1e6, 1..200),
                p in 0.0f64..100.0,
            ) {
                let cdf = Cdf::new(samples);
                let v = cdf.percentile(p);
                prop_assert!(v >= cdf.min() - 1e-9 && v <= cdf.max() + 1e-9);
            }
        }
    }
}
