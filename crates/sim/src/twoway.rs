//! Two-direction (combined) negotiation sessions.
//!
//! The paper's §5.1 distance experiments put *all* traffic between the
//! two ISPs on the table at once — "each with traffic flows going in both
//! directions" — because mutual compromises often pair a concession on an
//! A→B flow with a gain on a B→A flow. This module builds a combined
//! session over both directed flow sets and provides the distance mapper
//! that scores each ISP's own-side kilometres across both directions.
//!
//! Combined flow numbering: indices `0..n_fwd` are the A→B flows,
//! `n_fwd..n_fwd+n_rev` are the B→A flows (each in its own direction's
//! row-major order). A combined [`Assignment`] spans both ranges.

use crate::pairdata::PairData;
use nexit_core::{GainTable, PreferenceMapper, SessionInput, Side};
use nexit_routing::{Assignment, FlowId, PairFlows};

/// A combined two-direction session: input plus the stitched default
/// assignment.
pub struct TwoWaySession {
    /// Engine session input over the combined index space.
    pub input: SessionInput,
    /// Combined default assignment (fwd defaults then rev defaults).
    pub default: Assignment,
    /// Number of forward (A→B) flows.
    pub n_fwd: usize,
}

impl TwoWaySession {
    /// Build from the two directed datasets of one pair.
    pub fn build(fwd: &PairData<'_>, rev: &PairData<'_>) -> Self {
        let n_fwd = fwd.flows.len();
        let n_rev = rev.flows.len();
        let k = fwd.pair.num_interconnections();
        assert_eq!(k, rev.pair.num_interconnections());

        let mut flow_ids = Vec::with_capacity(n_fwd + n_rev);
        let mut defaults = Vec::with_capacity(n_fwd + n_rev);
        let mut volumes = Vec::with_capacity(n_fwd + n_rev);
        let mut choices = Vec::with_capacity(n_fwd + n_rev);
        for i in 0..n_fwd {
            flow_ids.push(FlowId::new(i));
            defaults.push(fwd.default.choice(FlowId::new(i)));
            volumes.push(fwd.flows.flows[i].volume);
            choices.push(fwd.default.choice(FlowId::new(i)));
        }
        for i in 0..n_rev {
            flow_ids.push(FlowId::new(n_fwd + i));
            defaults.push(rev.default.choice(FlowId::new(i)));
            volumes.push(rev.flows.flows[i].volume);
            choices.push(rev.default.choice(FlowId::new(i)));
        }
        Self {
            input: SessionInput {
                flow_ids,
                defaults,
                volumes,
                num_alternatives: k,
            },
            default: Assignment::from_choices(choices),
            n_fwd,
        }
    }

    /// Split a combined assignment back into per-direction assignments
    /// `(fwd, rev)`.
    pub fn split(&self, combined: &Assignment) -> (Assignment, Assignment) {
        let choices = combined.choices();
        (
            Assignment::from_choices(choices[..self.n_fwd].to_vec()),
            Assignment::from_choices(choices[self.n_fwd..].to_vec()),
        )
    }
}

/// Distance objective over both directions for one ISP.
///
/// For the ISP on `side` of the *forward* view: forward flows traverse it
/// as the upstream, reverse flows as the downstream.
pub struct TwoWayDistanceMapper<'a> {
    side: Side,
    fwd: &'a PairFlows,
    rev: &'a PairFlows,
    n_fwd: usize,
}

impl<'a> TwoWayDistanceMapper<'a> {
    /// Mapper for one ISP of the combined session.
    pub fn new(side: Side, fwd: &'a PairFlows, rev: &'a PairFlows, n_fwd: usize) -> Self {
        Self {
            side,
            fwd,
            rev,
            n_fwd,
        }
    }
}

impl PreferenceMapper for TwoWayDistanceMapper<'_> {
    fn gains(&mut self, input: &SessionInput, _current: &Assignment, out: &mut GainTable) {
        for (i, (&fid, &default)) in input.flow_ids.iter().zip(&input.defaults).enumerate() {
            // Which direction does this combined index belong to, and
            // which side of that direction's view are we?
            let (metrics, upstream_here) = if fid.index() < self.n_fwd {
                (&self.fwd.metrics[fid.index()], self.side == Side::A)
            } else {
                (
                    &self.rev.metrics[fid.index() - self.n_fwd],
                    self.side == Side::B,
                )
            };
            let km = |alt: usize| {
                if upstream_here {
                    metrics.up_km[alt]
                } else {
                    metrics.down_km[alt]
                }
            };
            let base = km(default.index());
            for (alt, cell) in out.row_mut(i).iter_mut().enumerate() {
                *cell = base - km(alt);
            }
        }
    }
}

/// Side distance of one ISP across both directions under per-direction
/// assignments. `side` is relative to the forward view.
pub fn twoway_side_distance(
    side: Side,
    fwd: &PairFlows,
    rev: &PairFlows,
    fwd_asg: &Assignment,
    rev_asg: &Assignment,
) -> f64 {
    let fwd_km = nexit_routing::assignment::side_distance_km(fwd, fwd_asg, side == Side::A);
    let rev_km = nexit_routing::assignment::side_distance_km(rev, rev_asg, side == Side::B);
    fwd_km + rev_km
}

/// Total two-direction distance under per-direction assignments.
pub fn twoway_total_distance(
    fwd: &PairFlows,
    rev: &PairFlows,
    fwd_asg: &Assignment,
    rev_asg: &Assignment,
) -> f64 {
    nexit_routing::assignment::total_distance_km(fwd, fwd_asg)
        + nexit_routing::assignment::total_distance_km(rev, rev_asg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairdata::ExpConfig;
    use nexit_topology::{GeneratorConfig, TopologyGenerator};
    use nexit_workload::WorkloadModel;

    fn setup() -> nexit_topology::Universe {
        TopologyGenerator::new(GeneratorConfig {
            num_isps: 10,
            num_mesh_isps: 0,
            seed: 5,
            ..GeneratorConfig::default()
        })
        .generate()
    }

    #[test]
    fn combined_session_covers_both_directions() {
        let u = setup();
        let idx = u.eligible_pairs(2, true)[0];
        let pair = &u.pairs[idx];
        let a = &u.isps[pair.isp_a.index()];
        let b = &u.isps[pair.isp_b.index()];
        let cfg = ExpConfig::default();
        let fwd = PairData::build(a, b, pair.clone(), cfg.workload);
        let rev = PairData::build(b, a, fwd.mirrored_pair(), cfg.workload);
        let session = TwoWaySession::build(&fwd, &rev);
        assert_eq!(session.input.len(), fwd.flows.len() + rev.flows.len());
        let (f_asg, r_asg) = session.split(&session.default);
        assert_eq!(f_asg.choices(), fwd.default.choices());
        assert_eq!(r_asg.choices(), rev.default.choices());
        let _ = WorkloadModel::Gravity;
    }

    #[test]
    fn twoway_mapper_defaults_are_zero() {
        let u = setup();
        let idx = u.eligible_pairs(2, true)[0];
        let pair = &u.pairs[idx];
        let a = &u.isps[pair.isp_a.index()];
        let b = &u.isps[pair.isp_b.index()];
        let fwd = PairData::build(a, b, pair.clone(), WorkloadModel::Gravity);
        let rev = PairData::build(b, a, fwd.mirrored_pair(), WorkloadModel::Gravity);
        let session = TwoWaySession::build(&fwd, &rev);
        for side in [Side::A, Side::B] {
            let mut mapper = TwoWayDistanceMapper::new(side, &fwd.flows, &rev.flows, session.n_fwd);
            let mut gains = GainTable::new(session.input.len(), session.input.num_alternatives);
            mapper.gains(&session.input, &session.default, &mut gains);
            for i in 0..gains.num_flows() {
                assert_eq!(
                    gains.get(i, session.input.defaults[i].index()),
                    0.0,
                    "default column must be zero"
                );
            }
        }
    }
}
