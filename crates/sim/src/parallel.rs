//! Deterministic parallel fan-out for the per-pair experiment sweeps.
//!
//! Every experiment driver is a loop of independent, read-only per-pair
//! (or per-scenario) computations over a shared [`nexit_topology::Universe`]
//! — exactly the shape a worker pool handles well. [`par_map`] runs the
//! items on crossbeam scoped threads pulling indices from a shared
//! atomic counter and collects results **by item index**, so the output
//! is byte-identical to the serial loop regardless of thread count or
//! scheduling: parallelism changes wall-clock time, never results.

use std::sync::atomic::{AtomicUsize, Ordering};

// The flow-level fill lives in the core crate (the preference mappers
// fan out through it directly); the harness re-exports it next to the
// pair-level `par_map` so experiment code has one import site.
pub use nexit_core::parallel::{par_flows, resolve_threads};

/// Map `f` over `0..num_items` with `threads` workers, returning results
/// in item order. `threads <= 1` runs the plain serial loop; any other
/// count produces the identical output (each slot is computed by exactly
/// one worker and placed by index).
pub fn par_map<R, F>(threads: usize, num_items: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_with(threads, num_items, || (), |(), i| f(i))
}

/// [`par_map`] with **worker-local state**: every worker calls `init`
/// once and hands the state to each of its items. The state is the
/// mechanism by which the experiment sweeps thread one
/// [`nexit_core::TableArena`] (and similar recycled scratch) through all
/// the items a worker processes — buffer reuse that affects allocation
/// only, never values, so the by-index collection keeps the output
/// byte-identical to the serial loop for any thread count.
pub fn par_map_with<S, R, I, F>(threads: usize, num_items: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let threads = resolve_threads(threads).min(num_items);
    if threads <= 1 {
        let mut state = init();
        return (0..num_items).map(|i| f(&mut state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded();
    crossbeam::thread::scope(|s| {
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let init = &init;
            let f = &f;
            workers.push(s.spawn(move |_| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= num_items {
                        break;
                    }
                    tx.send((i, f(&mut state, i)))
                        .expect("result collector dropped");
                }
            }));
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..num_items).map(|_| None).collect();
        while let Ok((i, r)) = rx.recv() {
            debug_assert!(out[i].is_none(), "item {i} computed twice");
            out[i] = Some(r);
        }
        // Surface a worker's own panic rather than the empty slot it
        // left behind.
        for worker in workers {
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("worker skipped an item"))
            .collect()
    })
    .expect("sweep worker panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order() {
        let serial = par_map(1, 100, |i| i * i);
        let parallel = par_map(4, 100, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(par_map(64, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn worker_state_is_reused_within_a_worker() {
        // Each worker's state counts the items it processed; the counts
        // must partition the item set, and results stay in item order.
        let results = par_map_with(
            3,
            30,
            || 0usize,
            |seen, i| {
                *seen += 1;
                (i, *seen)
            },
        );
        let items: Vec<usize> = results.iter().map(|&(i, _)| i).collect();
        assert_eq!(items, (0..30).collect::<Vec<_>>());
        // Every item was someone's k-th (k >= 1), and at least one
        // worker processed more than one item.
        assert!(results.iter().all(|&(_, k)| k >= 1));
        assert!(results.iter().any(|&(_, k)| k > 1));
    }

    #[test]
    #[should_panic(expected = "item 7 exploded")]
    fn worker_panics_surface_with_their_payload() {
        par_map(4, 16, |i| {
            assert!(i != 7, "item {i} exploded");
            i
        });
    }
}
