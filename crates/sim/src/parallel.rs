//! Deterministic parallel fan-out for the per-pair experiment sweeps.
//!
//! Every experiment driver is a loop of independent, read-only per-pair
//! (or per-scenario) computations over a shared [`nexit_topology::Universe`]
//! — exactly the shape a worker pool handles well. [`par_map`] runs the
//! items on crossbeam scoped threads pulling indices from a shared
//! atomic counter and collects results **by item index**, so the output
//! is byte-identical to the serial loop regardless of thread count or
//! scheduling: parallelism changes wall-clock time, never results.

use nexit_core::GainTable;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads a sweep should use: an explicit request, or
/// every available core when `requested` is 0 (the auto setting).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// Map `f` over `0..num_items` with `threads` workers, returning results
/// in item order. `threads <= 1` runs the plain serial loop; any other
/// count produces the identical output (each slot is computed by exactly
/// one worker and placed by index).
pub fn par_map<R, F>(threads: usize, num_items: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_with(threads, num_items, || (), |(), i| f(i))
}

/// [`par_map`] with **worker-local state**: every worker calls `init`
/// once and hands the state to each of its items. The state is the
/// mechanism by which the experiment sweeps thread one
/// [`nexit_core::TableArena`] (and similar recycled scratch) through all
/// the items a worker processes — buffer reuse that affects allocation
/// only, never values, so the by-index collection keeps the output
/// byte-identical to the serial loop for any thread count.
pub fn par_map_with<S, R, I, F>(threads: usize, num_items: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let threads = resolve_threads(threads).min(num_items);
    if threads <= 1 {
        let mut state = init();
        return (0..num_items).map(|i| f(&mut state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded();
    crossbeam::thread::scope(|s| {
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let init = &init;
            let f = &f;
            workers.push(s.spawn(move |_| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= num_items {
                        break;
                    }
                    tx.send((i, f(&mut state, i)))
                        .expect("result collector dropped");
                }
            }));
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..num_items).map(|_| None).collect();
        while let Ok((i, r)) = rx.recv() {
            debug_assert!(out[i].is_none(), "item {i} computed twice");
            out[i] = Some(r);
        }
        // Surface a worker's own panic rather than the empty slot it
        // left behind.
        for worker in workers {
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("worker skipped an item"))
            .collect()
    })
    .expect("sweep worker panicked")
}

/// Fill the rows of one flat [`GainTable`] in parallel: `fill(flow, row)`
/// computes flow `flow`'s gain row in place.
///
/// This is the flow-level complement to [`par_map`]'s pair-level fan-out:
/// one huge session (destination-granularity negotiation puts every
/// destination PoP of a big ISP on one table) spends most of its mapper
/// time in per-flow computations that are independent of each other.
/// Because the table is one flat buffer whose rows are contiguous
/// `num_alternatives()`-sized chunks, it splits into `threads` disjoint
/// sub-slices of whole rows — each worker writes its own range and
/// nothing else, so the result is **byte-identical** to the serial fill
/// for any thread count (each cell is computed once, by the same
/// arithmetic, from shared read-only state).
pub fn par_flows<F>(threads: usize, table: &mut GainTable, fill: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let num_flows = table.num_flows();
    let k = table.num_alternatives();
    if num_flows == 0 || k == 0 {
        return;
    }
    let threads = resolve_threads(threads).min(num_flows);
    if threads <= 1 {
        for flow in 0..num_flows {
            fill(flow, table.row_mut(flow));
        }
        return;
    }
    let rows_per = num_flows.div_ceil(threads);
    crossbeam::thread::scope(|s| {
        let fill = &fill;
        let mut rest = table.values_mut();
        let mut start = 0;
        while start < num_flows {
            let take = rows_per.min(num_flows - start);
            let (chunk, tail) = rest.split_at_mut(take * k);
            rest = tail;
            let base = start;
            s.spawn(move |_| {
                for (i, row) in chunk.chunks_mut(k).enumerate() {
                    fill(base + i, row);
                }
            });
            start += take;
        }
    })
    .expect("par_flows worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order() {
        let serial = par_map(1, 100, |i| i * i);
        let parallel = par_map(4, 100, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(par_map(64, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn worker_state_is_reused_within_a_worker() {
        // Each worker's state counts the items it processed; the counts
        // must partition the item set, and results stay in item order.
        let results = par_map_with(
            3,
            30,
            || 0usize,
            |seen, i| {
                *seen += 1;
                (i, *seen)
            },
        );
        let items: Vec<usize> = results.iter().map(|&(i, _)| i).collect();
        assert_eq!(items, (0..30).collect::<Vec<_>>());
        // Every item was someone's k-th (k >= 1), and at least one
        // worker processed more than one item.
        assert!(results.iter().all(|&(_, k)| k >= 1));
        assert!(results.iter().any(|&(_, k)| k > 1));
    }

    #[test]
    fn auto_resolves_to_at_least_one() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    #[should_panic(expected = "item 7 exploded")]
    fn worker_panics_surface_with_their_payload() {
        par_map(4, 16, |i| {
            assert!(i != 7, "item {i} exploded");
            i
        });
    }

    /// A deliberately order-sensitive fill: each cell mixes the flow and
    /// alternative index through float math that would drift if a cell
    /// were computed twice or from the wrong indices.
    fn reference_fill(flow: usize, row: &mut [f64]) {
        for (alt, cell) in row.iter_mut().enumerate() {
            *cell = (flow as f64 + 1.0).sqrt() * (alt as f64 - 1.5) / 3.0;
        }
    }

    #[test]
    fn par_flows_is_byte_identical_across_thread_counts() {
        let mut serial = GainTable::new(37, 5);
        par_flows(1, &mut serial, reference_fill);
        for threads in [2, 4] {
            let mut parallel = GainTable::new(37, 5);
            par_flows(threads, &mut parallel, reference_fill);
            // Bitwise equality, not approximate: same cells, same math,
            // same results regardless of which worker ran which row.
            assert!(
                serial
                    .values()
                    .iter()
                    .zip(parallel.values())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "thread count {threads} changed the table"
            );
        }
    }

    #[test]
    fn par_flows_handles_empty_and_tiny_tables() {
        let mut empty = GainTable::new(0, 4);
        par_flows(4, &mut empty, |_, _| panic!("no rows to fill"));
        let mut one = GainTable::new(1, 2);
        par_flows(8, &mut one, reference_fill);
        let mut expect = GainTable::new(1, 2);
        reference_fill(0, expect.row_mut(0));
        assert_eq!(one, expect);
    }
}
