//! Streaming churn driver (`experiments churn`): incremental
//! re-negotiation under live traffic.
//!
//! Every other experiment is batch — build a universe, negotiate once,
//! sweep. This module is the online path: a deterministic, seeded feed
//! of timestamped [`ChurnEvent`]s (flow arrivals/departures, background
//! load drift, interconnection failures and restorations) drives a
//! [`ChurnDriver`] that keeps one live negotiated state per pair and
//! re-derives, per event, **only what the event invalidated**:
//!
//! * the flow set defines the negotiation table: active flows are
//!   negotiated, inactive flows ride their defaults as background
//!   traffic — exactly the impacted/residual split of the optimal-MEL
//!   LP, so the two layers share one state model;
//! * gain rows live in per-(variant, side) [`GainCache`]s (arena-backed
//!   memo tables from `nexit_core::delta`): a flow event refreshes one
//!   row, everything else is served bit-identically from the cache, so
//!   the re-entered negotiation machine is byte-for-byte the session a
//!   cold build would run;
//! * the driver negotiates with either [`Objective`]: **distance** gains
//!   are geometry-static per variant (caching is pure memoization), while
//!   **bandwidth** gains read the shared link loads. The bandwidth
//!   objective scores quantized utilization classes
//!   (`nexit_core::utilization_classes`, width 1/16), making every gain
//!   row a pure function of the per-link class vector; each cached row
//!   carries the *load footprint* of links it read, and a `LoadDelta`
//!   invalidates exactly the rows whose footprint intersects links whose
//!   class moved ([`GainCache::bump_load_epoch`]) — the outcome-cache key
//!   is effectively (flow set, variant, footprint-restricted class
//!   signature): a factor that leaves every footprint bucket unchanged
//!   is a provable hit, a class move misses precisely the touched rows.
//!   Per-link loads are maintained incrementally (`nexit_core::SideLoads`
//!   accumulators per traffic layer, O(links touched) per flow event),
//!   never re-aggregated;
//! * the optimal-MEL baseline re-solves through the retained
//!   [`BandwidthLp`] workspaces: a load delta is an rhs-only patch
//!   (dual-simplex re-entry — the growth sweep's ladder, folded in as
//!   batched load events), a flow event a coefficient refresh, and a
//!   topology flap re-enters the flapped variant's own retained basis;
//! * when an event's impacted set exceeds the driver's impact threshold
//!   (default 5%, the `reassignment_5pct` pacing generalized), the
//!   driver falls back to a full cold session: caches invalidated
//!   wholesale, every row recomputed. Interconnection failures always
//!   take this path — they change every row's alternative set.
//!
//! Correctness is replay-checked: after every event the driver's state
//! is compared against a from-scratch cold negotiation of the same
//! prefix state (fresh mappers, fresh tables, fresh machines, cold LP).
//! Assignments must be **byte-identical** — the cache layer may never
//! perturb a negotiation decision — and any divergence is a hard
//! violation that exits the binary non-zero, making `churn --smoke` a
//! CI gate. Determinism is pinned the same way: the sweep reruns at
//! 1/2/4 workers and must reproduce identical assignments and
//! identical per-event work series.
//!
//! Latency is reported two ways: wall-clock per-event re-negotiation
//! latency (p50/p99 [`StreamingCdf`]s, incremental vs cold twin — the
//! headline claim) and a deterministic *work* meter (gain rows
//! refreshed + negotiation rounds + LP pivots) whose series is
//! reproducible across runs and thread counts, used by the determinism
//! tests where wall-clock cannot be.

use crate::cdf::StreamingCdf;
use crate::pairdata::PairData;
use crate::parallel::par_map;
use nexit_baselines::{BandwidthLp, OptimalBandwidthError};
use nexit_core::{
    negotiate, negotiate_in, utilization_classes, BandwidthMapper, CachedBandwidthMapper,
    CachedDistanceMapper, DistanceMapper, GainCache, LinkSet, NexitConfig, Party, Side, SideLoads,
    TableArena, Termination,
};
use nexit_lp::WarmStats;
use nexit_routing::{Assignment, FlowId};
use nexit_topology::{GeneratorConfig, IcxId, LinkId, TopologyGenerator, Universe};
use nexit_workload::{assign_capacities, link_loads, CapacityModel, WorkloadModel};
use std::time::Instant;

/// What one churn event does to a pair's live state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnKind {
    /// A flow joins the negotiation table (it was background traffic).
    FlowAdd(FlowId),
    /// A flow leaves the table and reverts to its default route.
    FlowRemove(FlowId),
    /// Background (non-negotiated) traffic drifts to `factor` times its
    /// nominal volume — one step of the growth sweep's ladder, applied
    /// online as an rhs-only warm LP re-solve.
    LoadDelta {
        /// New absolute background scale.
        factor: f64,
    },
    /// An interconnection fails: negotiation moves to the reduced pair.
    LinkFail(IcxId),
    /// The failed interconnection heals: back to the full pair.
    LinkRestore,
}

/// One timestamped event of a pair's feed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// Event time in ticks (strictly increasing within a feed).
    pub tick: u64,
    /// What happened.
    pub kind: ChurnKind,
}

/// Which ISP-internal objective the churn driver negotiates with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// §5.1 distance gains — geometry-static per variant, so a cached
    /// row survives any amount of flow and load churn.
    #[default]
    Distance,
    /// §5.2 overload avoidance over quantized utilization classes —
    /// load-dependent, served through footprint-keyed invalidation.
    Bandwidth,
}

impl Objective {
    /// Lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Objective::Distance => "distance",
            Objective::Bandwidth => "bandwidth",
        }
    }
}

/// Driver knobs.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Impacted fraction of the active set above which the driver runs
    /// a full cold session instead of the delta path.
    pub impact_threshold: f64,
    /// Skip the optimal-MEL baseline for pairs whose LP would exceed
    /// this many variables.
    pub max_lp_variables: usize,
    /// The negotiation objective.
    pub objective: Objective,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            impact_threshold: 0.05,
            max_lp_variables: 6_000,
            objective: Objective::Distance,
        }
    }
}

/// Static per-pair data the churn state machine switches between: the
/// full pair plus one reduced variant per failable interconnection,
/// and the capacity model fixed from pre-churn loads.
pub struct ChurnPair<'u> {
    /// Topology variants; index 0 is the full pair, the rest reduced.
    pub variants: Vec<PairData<'u>>,
    /// Which interconnection each variant lacks (`None` for the full
    /// pair), parallel to `variants`.
    pub variant_failed: Vec<Option<IcxId>>,
    /// Upstream link capacities (assigned from pre-churn default loads).
    pub caps_up: Vec<f64>,
    /// Downstream link capacities.
    pub caps_down: Vec<f64>,
}

impl<'u> ChurnPair<'u> {
    /// Prepare one pair: build the full dataset, capacitate its links
    /// from the default (pre-churn) loads, and prebuild up to
    /// `max_failures` reduced variants (reusing the full pair's
    /// shortest-path matrices).
    pub fn build(universe: &'u Universe, pair_idx: usize, max_failures: usize) -> Self {
        let pair = &universe.pairs[pair_idx];
        let a = &universe.isps[pair.isp_a.index()];
        let b = &universe.isps[pair.isp_b.index()];
        let full = PairData::build(a, b, pair.clone(), WorkloadModel::Identical);

        let pre_loads = link_loads(&full.view(), &full.paths, &full.flows, &full.default);
        let caps_up = assign_capacities(&CapacityModel::default(), &pre_loads.up);
        let caps_down = assign_capacities(&CapacityModel::default(), &pre_loads.down);

        let mut variants = vec![];
        let mut variant_failed = vec![None];
        let mut reduced = Vec::new();
        for failed in 0..full.pair.num_interconnections() {
            if reduced.len() >= max_failures {
                break;
            }
            let failed_icx = IcxId::new(failed);
            let (reduced_pair, _mapping) = full.pair.without_interconnection(failed_icx);
            if reduced_pair.num_interconnections() < 2 {
                continue; // nothing left to negotiate over
            }
            reduced.push(full.build_reduced(reduced_pair, WorkloadModel::Identical));
            variant_failed.push(Some(failed_icx));
        }
        variants.push(full);
        variants.extend(reduced);
        Self {
            variants,
            variant_failed,
            caps_up,
            caps_down,
        }
    }

    /// Flows of the pair (identical across variants).
    pub fn num_flows(&self) -> usize {
        self.variants[0].flows.len()
    }

    /// Interconnections that can fail (those with a prepared variant).
    pub fn failable(&self) -> Vec<IcxId> {
        self.variant_failed.iter().filter_map(|f| *f).collect()
    }

    /// Variant index for a failure state.
    fn variant_for(&self, failed: Option<IcxId>) -> usize {
        self.variant_failed
            .iter()
            .position(|f| *f == failed)
            .expect("failure state has a prepared variant")
    }
}

/// The logical (pre-negotiation) state an event feed evolves: which
/// flows are on the table, the background scale, and the topology
/// variant. Shared by the incremental driver, the cold replayer and
/// the trace generator so all three agree on event semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalState {
    /// Table membership per pair flow.
    pub active: Vec<bool>,
    /// Number of active flows.
    pub num_active: usize,
    /// Background traffic scale (1.0 = nominal).
    pub scale: f64,
    /// Current topology variant (index into [`ChurnPair::variants`]).
    pub variant: usize,
}

impl LogicalState {
    /// Initial state: the given table membership, nominal load, full
    /// topology.
    pub fn new(active: Vec<bool>) -> Self {
        let num_active = active.iter().filter(|&&on| on).count();
        Self {
            active,
            num_active,
            scale: 1.0,
            variant: 0,
        }
    }

    /// Apply one event, returning the size of the impacted flow set for
    /// the negotiation layer (0 = negotiated state untouched).
    pub fn apply(&mut self, pair: &ChurnPair<'_>, kind: ChurnKind) -> usize {
        match kind {
            ChurnKind::LoadDelta { factor } => {
                self.scale = factor;
                0
            }
            ChurnKind::FlowAdd(f) => {
                assert!(!self.active[f.index()], "FlowAdd of an active flow");
                self.active[f.index()] = true;
                self.num_active += 1;
                1
            }
            ChurnKind::FlowRemove(f) => {
                assert!(self.active[f.index()], "FlowRemove of an inactive flow");
                self.active[f.index()] = false;
                self.num_active -= 1;
                1
            }
            ChurnKind::LinkFail(icx) => {
                assert_eq!(self.variant, 0, "LinkFail while already failed");
                self.variant = pair.variant_for(Some(icx));
                self.num_active
            }
            ChurnKind::LinkRestore => {
                assert_ne!(self.variant, 0, "LinkRestore without a failure");
                self.variant = 0;
                self.num_active
            }
        }
    }
}

/// Negotiated state snapshot, for incremental-vs-cold comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct NegotiatedState {
    /// Full-pair assignment (active flows negotiated, the rest on the
    /// current variant's defaults).
    pub assignment: Assignment,
    /// Side A's true cumulative gain.
    pub gain_a: i64,
    /// Side B's true cumulative gain.
    pub gain_b: i64,
    /// How the session ended.
    pub termination: Termination,
    /// Reassignments performed in the session.
    pub reassignments: usize,
    /// Optimal-MEL baseline objective (`None` when the LP is skipped
    /// for size).
    pub opt_t: Option<f64>,
}

/// The session-input projection of a logical state on one variant.
fn session_input(data: &PairData<'_>, active: &[bool]) -> nexit_core::SessionInput {
    let mut flow_ids = Vec::new();
    let mut defaults = Vec::new();
    let mut volumes = Vec::new();
    for (i, &on) in active.iter().enumerate() {
        if on {
            let fid = FlowId::new(i);
            flow_ids.push(fid);
            defaults.push(data.default.choice(fid));
            volumes.push(data.flows.flows[i].volume);
        }
    }
    nexit_core::SessionInput {
        flow_ids,
        defaults,
        volumes,
        num_alternatives: data.pair.num_interconnections(),
    }
}

/// Incrementally maintained per-link load state for one variant under
/// the bandwidth objective: active and background volumes accumulated
/// separately per side (effective load on link `l` is
/// `active[l] + scale * background[l]`), plus the utilization classes
/// of the current load epoch. Flow events move a flow's volume between
/// the two layers along its default paths in O(links touched); load
/// deltas change only `scale` and re-quantize.
struct BwVariant {
    /// Active flows' volumes on their default upstream paths.
    active_up: SideLoads,
    /// Active flows' volumes on their default downstream paths.
    active_down: SideLoads,
    /// Background (inactive) volumes, at nominal scale, upstream.
    background_up: SideLoads,
    /// Background volumes downstream.
    background_down: SideLoads,
    /// Utilization classes of the current epoch, upstream links.
    classes_up: Vec<u32>,
    /// Utilization classes downstream.
    classes_down: Vec<u32>,
}

impl BwVariant {
    fn zero(num_up: usize, num_down: usize) -> Self {
        Self {
            active_up: SideLoads::zero(num_up),
            active_down: SideLoads::zero(num_down),
            background_up: SideLoads::zero(num_up),
            background_down: SideLoads::zero(num_down),
            classes_up: vec![0; num_up],
            classes_down: vec![0; num_down],
        }
    }

    fn reset(&mut self) {
        self.active_up.reset();
        self.active_down.reset();
        self.background_up.reset();
        self.background_down.reset();
    }
}

/// The live incremental state machine for one pair.
pub struct ChurnDriver<'u> {
    pair: &'u ChurnPair<'u>,
    cfg: ChurnConfig,
    state: LogicalState,
    negotiated: NegotiatedState,
    /// Per-variant (side A, side B) gain-row memo tables, built lazily.
    caches: Vec<Option<(GainCache, GainCache)>>,
    /// Per-variant incremental load state (bandwidth objective only).
    bw: Vec<Option<BwVariant>>,
    /// Scratch: links whose utilization class the last snapshot moved.
    moved_up: LinkSet,
    moved_down: LinkSet,
    /// Scratch: effective loads and fresh classes of one side.
    eff: Vec<f64>,
    new_classes: Vec<u32>,
    /// Scratch: distinct-flow marks for impact counting.
    touched: Vec<bool>,
    touched_list: Vec<usize>,
    /// Table/index buffers recycled across every re-entered session.
    arena: TableArena,
    /// One retained LP scenario per variant, keyed by variant index.
    lp: BandwidthLp<'u>,
    /// Whether the baseline LP fits the size budget for this pair.
    lp_enabled: bool,
    /// Bumps when the active set changes; variants re-skeleton lazily.
    lp_epoch: u64,
    lp_variant_epoch: Vec<u64>,
    /// Events where the negotiated state was provably untouched.
    pub cached_outcomes: u64,
    /// Re-negotiations on the delta path (cache-served rows).
    pub incremental_sessions: u64,
    /// Full cold sessions forced by the impact threshold.
    pub fallback_sessions: u64,
    /// Load events whose quantized class signature was unchanged on
    /// every cached footprint (provable outcome-cache hit).
    pub signature_hits: u64,
    /// Load events that moved at least one cached row's class bucket.
    pub signature_misses: u64,
    /// Deterministic work units spent by the last event.
    last_work: u64,
    /// LP failures (iteration cap / numerical trouble) — hard errors.
    pub lp_errors: Vec<String>,
}

impl<'u> ChurnDriver<'u> {
    /// Bring a pair live: one initial cold session plus the baseline
    /// LP's first (cold) solve.
    pub fn new(pair: &'u ChurnPair<'u>, initial_active: Vec<bool>, cfg: ChurnConfig) -> Self {
        assert_eq!(initial_active.len(), pair.num_flows());
        let state = LogicalState::new(initial_active);
        let lp_enabled =
            state.num_active * pair.variants[0].pair.num_interconnections() <= cfg.max_lp_variables;
        let num_flows = pair.num_flows();
        let mut driver = Self {
            pair,
            cfg,
            state,
            negotiated: NegotiatedState {
                assignment: pair.variants[0].default.clone(),
                gain_a: 0,
                gain_b: 0,
                termination: Termination::Exhausted,
                reassignments: 0,
                opt_t: None,
            },
            caches: pair.variants.iter().map(|_| None).collect(),
            bw: pair.variants.iter().map(|_| None).collect(),
            moved_up: LinkSet::new(pair.caps_up.len()),
            moved_down: LinkSet::new(pair.caps_down.len()),
            eff: Vec::new(),
            new_classes: Vec::new(),
            touched: vec![false; num_flows],
            touched_list: Vec::new(),
            arena: TableArena::new(),
            lp: BandwidthLp::new(),
            lp_enabled,
            lp_epoch: 0,
            lp_variant_epoch: vec![u64::MAX; pair.variants.len()],
            cached_outcomes: 0,
            incremental_sessions: 0,
            fallback_sessions: 0,
            signature_hits: 0,
            signature_misses: 0,
            last_work: 0,
            lp_errors: Vec::new(),
        };
        if cfg.objective == Objective::Bandwidth {
            driver.rebuild_bw(0);
        }
        driver.renegotiate(true);
        driver.resolve_baseline();
        driver.fallback_sessions = 0; // the bring-up session is not churn
        driver
    }

    /// The live logical state.
    pub fn state(&self) -> &LogicalState {
        &self.state
    }

    /// The live negotiated state.
    pub fn negotiated(&self) -> &NegotiatedState {
        &self.negotiated
    }

    /// Deterministic work units (rows refreshed + rounds + LP pivots)
    /// spent by the most recent [`ChurnDriver::apply`].
    pub fn last_work(&self) -> u64 {
        self.last_work
    }

    /// Aggregate warm/cold counters across the retained LP workspaces.
    pub fn lp_stats(&self) -> WarmStats {
        self.lp.warm_stats()
    }

    /// Aggregate gain-cache counters across all variant caches:
    /// `(rows refreshed, rows served, rows footprint-invalidated)`.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        self.caches
            .iter()
            .flatten()
            .fold((0, 0, 0), |(r, s, i), (a, b)| {
                (
                    r + a.refreshed() + b.refreshed(),
                    s + a.served() + b.served(),
                    i + a.load_invalidated() + b.load_invalidated(),
                )
            })
    }

    /// Process one event incrementally.
    pub fn apply(&mut self, event: &ChurnEvent) {
        match self.cfg.objective {
            Objective::Distance => self.apply_distance(event),
            Objective::Bandwidth => self.apply_bandwidth(event),
        }
    }

    /// The distance delta path: rows are geometry-static per variant, so
    /// a load delta provably leaves the whole gain table (and hence the
    /// outcome) untouched, and a flow event impacts exactly one row.
    fn apply_distance(&mut self, event: &ChurnEvent) {
        let impacted = self.state.apply(self.pair, event.kind);
        let lp_structural = !matches!(event.kind, ChurnKind::LoadDelta { .. });
        let mut work = 0u64;
        if impacted == 0 {
            // Negotiation inputs untouched: the outcome is provably
            // current; only the baseline needs an (rhs-only) re-solve.
            self.cached_outcomes += 1;
        } else {
            let fraction = impacted as f64 / self.state.num_active.max(1) as f64;
            let fallback = fraction > self.cfg.impact_threshold;
            if fallback {
                self.fallback_sessions += 1;
            } else {
                self.incremental_sessions += 1;
            }
            work += self.renegotiate(fallback);
        }
        if lp_structural {
            self.lp_epoch += 1;
        }
        work += self.resolve_baseline();
        self.last_work = work + 1;
    }

    /// The bandwidth delta path. Flow events first move the flow's
    /// volume between the active and background load layers (O(links
    /// touched)); then the utilization-class snapshot is refreshed and
    /// every cached row whose footprint intersects a moved class is
    /// invalidated. The impacted set is the distinct *active* flows
    /// those invalidations touched (plus the churned flow itself for
    /// membership changes); zero impacted rows is a provable
    /// outcome-cache hit — the session's gain tables are bit-identical
    /// to a fresh fill against the new snapshot.
    fn apply_bandwidth(&mut self, event: &ChurnEvent) {
        self.state.apply(self.pair, event.kind);
        let lp_structural = !matches!(event.kind, ChurnKind::LoadDelta { .. });
        let mut work = 0u64;
        match event.kind {
            ChurnKind::LinkFail(_) | ChurnKind::LinkRestore => {
                // Variant switch: every row's alternative set (and the
                // defaults the load layers accumulate over) changed.
                self.rebuild_bw(self.state.variant);
                self.fallback_sessions += 1;
                work += self.renegotiate(true);
            }
            ChurnKind::LoadDelta { .. } | ChurnKind::FlowAdd(_) | ChurnKind::FlowRemove(_) => {
                match event.kind {
                    ChurnKind::FlowAdd(f) => self.shift_flow_layer(f, true),
                    ChurnKind::FlowRemove(f) => self.shift_flow_layer(f, false),
                    _ => {}
                }
                self.refresh_classes(self.state.variant);
                let invalidated_active = self.invalidate_moved();
                let impacted = match event.kind {
                    ChurnKind::LoadDelta { .. } => invalidated_active,
                    // The churned flow impacts the session through its
                    // table membership even when no class moved; count
                    // it once.
                    ChurnKind::FlowAdd(f) => {
                        invalidated_active + usize::from(!self.touched[f.index()])
                    }
                    ChurnKind::FlowRemove(_) => invalidated_active + 1,
                    _ => unreachable!(),
                };
                if impacted == 0 {
                    self.cached_outcomes += 1;
                    self.signature_hits += 1;
                } else {
                    if matches!(event.kind, ChurnKind::LoadDelta { .. }) {
                        self.signature_misses += 1;
                    }
                    let fraction = impacted as f64 / self.state.num_active.max(1) as f64;
                    let fallback = fraction > self.cfg.impact_threshold;
                    if fallback {
                        self.fallback_sessions += 1;
                    } else {
                        self.incremental_sessions += 1;
                    }
                    work += self.renegotiate(fallback);
                }
            }
        }
        if lp_structural {
            self.lp_epoch += 1;
        }
        work += self.resolve_baseline();
        self.last_work = work + 1;
    }

    /// Rebuild the bandwidth load state for `variant` from scratch (the
    /// bring-up and topology-flap path): re-aggregate both layers over
    /// the variant's own defaults in flow order — the same order a cold
    /// rebuild sums in, so the accumulators are bit-identical to a fresh
    /// aggregation — and quantize the effective loads.
    fn rebuild_bw(&mut self, variant: usize) {
        let pair = self.pair;
        let data = &pair.variants[variant];
        let bw = self.bw[variant]
            .get_or_insert_with(|| BwVariant::zero(pair.caps_up.len(), pair.caps_down.len()));
        bw.reset();
        for (i, &on) in self.state.active.iter().enumerate() {
            let f = FlowId::new(i);
            let d = data.default.choice(f);
            let volume = data.flows.flows[i].volume;
            let (up, down) = if on {
                (&mut bw.active_up, &mut bw.active_down)
            } else {
                (&mut bw.background_up, &mut bw.background_down)
            };
            up.add_path(data.paths.up_links(f, d), volume);
            down.add_path(data.paths.down_links(f, d), volume);
        }
        let scale = self.state.scale;
        self.eff.clear();
        self.eff.extend(
            bw.active_up
                .loads()
                .iter()
                .zip(bw.background_up.loads())
                .map(|(&a, &b)| a + scale * b),
        );
        utilization_classes(&self.eff, &pair.caps_up, &mut self.new_classes);
        bw.classes_up.copy_from_slice(&self.new_classes);
        self.eff.clear();
        self.eff.extend(
            bw.active_down
                .loads()
                .iter()
                .zip(bw.background_down.loads())
                .map(|(&a, &b)| a + scale * b),
        );
        utilization_classes(&self.eff, &pair.caps_down, &mut self.new_classes);
        bw.classes_down.copy_from_slice(&self.new_classes);
    }

    /// Move flow `f`'s volume between the background and active load
    /// layers along its default paths on the current variant — the
    /// O(links touched) accumulator maintenance a flow event needs.
    fn shift_flow_layer(&mut self, f: FlowId, becoming_active: bool) {
        let data = &self.pair.variants[self.state.variant];
        let d = data.default.choice(f);
        let volume = data.flows.flows[f.index()].volume;
        let bw = self.bw[self.state.variant]
            .as_mut()
            .expect("bandwidth state built for the live variant");
        let up = data.paths.up_links(f, d);
        let down = data.paths.down_links(f, d);
        let (from_up, to_up, from_down, to_down) = if becoming_active {
            (
                &mut bw.background_up,
                &mut bw.active_up,
                &mut bw.background_down,
                &mut bw.active_down,
            )
        } else {
            (
                &mut bw.active_up,
                &mut bw.background_up,
                &mut bw.active_down,
                &mut bw.background_down,
            )
        };
        from_up.add_path(up, -volume);
        to_up.add_path(up, volume);
        from_down.add_path(down, -volume);
        to_down.add_path(down, volume);
    }

    /// Re-quantize the effective loads of `variant` and collect the
    /// links whose utilization class moved into the per-side scratch
    /// [`LinkSet`]s.
    fn refresh_classes(&mut self, variant: usize) {
        let pair = self.pair;
        let scale = self.state.scale;
        let bw = self.bw[variant]
            .as_mut()
            .expect("bandwidth state built for the live variant");
        self.moved_up.clear();
        self.moved_down.clear();
        self.eff.clear();
        self.eff.extend(
            bw.active_up
                .loads()
                .iter()
                .zip(bw.background_up.loads())
                .map(|(&a, &b)| a + scale * b),
        );
        utilization_classes(&self.eff, &pair.caps_up, &mut self.new_classes);
        for (l, (&new, old)) in self
            .new_classes
            .iter()
            .zip(bw.classes_up.iter_mut())
            .enumerate()
        {
            if new != *old {
                *old = new;
                self.moved_up.insert(LinkId::new(l));
            }
        }
        self.eff.clear();
        self.eff.extend(
            bw.active_down
                .loads()
                .iter()
                .zip(bw.background_down.loads())
                .map(|(&a, &b)| a + scale * b),
        );
        utilization_classes(&self.eff, &pair.caps_down, &mut self.new_classes);
        for (l, (&new, old)) in self
            .new_classes
            .iter()
            .zip(bw.classes_down.iter_mut())
            .enumerate()
        {
            if new != *old {
                *old = new;
                self.moved_down.insert(LinkId::new(l));
            }
        }
    }

    /// Footprint invalidation against the scratch moved-link sets:
    /// advance both side caches' load epochs, drop every cached row
    /// whose footprint intersects a moved link, and return the number of
    /// **distinct active** flows among the dropped rows (inactive rows
    /// are invalidated too but do not impact the session).
    fn invalidate_moved(&mut self) -> usize {
        for &f in &self.touched_list {
            self.touched[f] = false;
        }
        self.touched_list.clear();
        let caches = self.caches[self.state.variant]
            .as_mut()
            .expect("caches built at bring-up");
        let touched = &mut self.touched;
        let touched_list = &mut self.touched_list;
        let active = &self.state.active;
        let mut count = 0usize;
        let mut mark = |f: usize| {
            if !touched[f] {
                touched[f] = true;
                touched_list.push(f);
                if active[f] {
                    count += 1;
                }
            }
        };
        caches.0.bump_load_epoch(&self.moved_up, &mut mark);
        caches.1.bump_load_epoch(&self.moved_down, &mut mark);
        count
    }

    /// Re-enter the negotiation machine on the current variant. With
    /// `fallback` the variant's caches are invalidated wholesale (a
    /// full cold session); otherwise rows are served from the memo and
    /// only missing/invalidated rows recompute. Either way the machine
    /// sees bit-identical inputs to a from-scratch build, so the
    /// outcome is byte-identical by construction.
    fn renegotiate(&mut self, fallback: bool) -> u64 {
        let pair = self.pair;
        let data = &pair.variants[self.state.variant];
        let k = data.pair.num_interconnections();
        if self.caches[self.state.variant].is_none() {
            let mut a = GainCache::new_in(&mut self.arena, data.flows.len(), k);
            let mut b = GainCache::new_in(&mut self.arena, data.flows.len(), k);
            if self.cfg.objective == Objective::Bandwidth {
                a = a.with_footprints(pair.caps_up.len());
                b = b.with_footprints(pair.caps_down.len());
            }
            self.caches[self.state.variant] = Some((a, b));
        }
        let input = session_input(data, &self.state.active);
        let caches = self.caches[self.state.variant]
            .as_mut()
            .expect("caches built above");
        if fallback {
            caches.0.invalidate_all();
            caches.1.invalidate_all();
        }
        let rows_before = caches.0.refreshed() + caches.1.refreshed();
        let outcome = {
            let (cache_a, cache_b) = caches;
            let (mut party_a, mut party_b) = match self.cfg.objective {
                Objective::Distance => (
                    Party::honest(
                        "A",
                        CachedDistanceMapper::new(Side::A, &data.flows, cache_a),
                    ),
                    Party::honest(
                        "B",
                        CachedDistanceMapper::new(Side::B, &data.flows, cache_b),
                    ),
                ),
                Objective::Bandwidth => {
                    let bw = self.bw[self.state.variant]
                        .as_ref()
                        .expect("bandwidth state built for the live variant");
                    (
                        Party::honest(
                            "A",
                            CachedBandwidthMapper::new(
                                Side::A,
                                &data.flows,
                                &data.paths,
                                &pair.caps_up,
                                &bw.classes_up,
                                cache_a,
                            ),
                        ),
                        Party::honest(
                            "B",
                            CachedBandwidthMapper::new(
                                Side::B,
                                &data.flows,
                                &data.paths,
                                &pair.caps_down,
                                &bw.classes_down,
                                cache_b,
                            ),
                        ),
                    )
                }
            };
            negotiate_in(
                &mut self.arena,
                &input,
                &data.default,
                &mut party_a,
                &mut party_b,
                &NexitConfig::win_win(),
            )
        };
        let rounds = outcome.transcript.len() as u64;
        self.negotiated.assignment = outcome.assignment;
        self.negotiated.gain_a = outcome.gain_a;
        self.negotiated.gain_b = outcome.gain_b;
        self.negotiated.termination = outcome.termination;
        self.negotiated.reassignments = outcome.reassignments;
        let caches = self.caches[self.state.variant]
            .as_ref()
            .expect("caches built above");
        let rows = caches.0.refreshed() + caches.1.refreshed() - rows_before;
        rows * k as u64 + rounds
    }

    /// Re-solve the optimal-MEL baseline through the retained
    /// workspaces: load drift re-enters via the rhs (dual simplex),
    /// flow-set changes re-skeleton the current variant in place
    /// (column refresh against the retained basis), and a variant
    /// switch re-enters that variant's own retained basis.
    fn resolve_baseline(&mut self) -> u64 {
        if !self.lp_enabled {
            self.negotiated.opt_t = None;
            return 0;
        }
        let pair = self.pair;
        let variant = self.state.variant;
        let data = &pair.variants[variant];
        let key = IcxId::new(variant);
        let before = self.lp.warm_stats();
        if self.lp_variant_epoch[variant] != self.lp_epoch {
            let impacted: Vec<FlowId> = self
                .state
                .active
                .iter()
                .enumerate()
                .filter(|(_, &on)| on)
                .map(|(i, _)| FlowId::new(i))
                .collect();
            let view = data.view();
            self.lp.update_scenario(
                key,
                &view,
                &data.paths,
                &data.flows,
                &impacted,
                &data.default,
                &pair.caps_up,
                &pair.caps_down,
            );
            self.lp_variant_epoch[variant] = self.lp_epoch;
        }
        match self.lp.solve_failure_scaled(key, self.state.scale) {
            Ok(opt) => self.negotiated.opt_t = Some(opt.t),
            Err(e) => {
                self.negotiated.opt_t = None;
                self.lp_errors.push(format!("baseline LP failed: {e}"));
            }
        }
        let after = self.lp.warm_stats();
        (after.eta_pivots - before.eta_pivots + after.refactorizations - before.refactorizations)
            as u64
    }
}

/// From-scratch rebuild of the negotiated state for a logical state:
/// fresh mappers, fresh tables, fresh machines, fresh LP skeleton, cold
/// solve. This is the reference every event prefix is replayed against,
/// and the cold twin the latency CDFs compare to. Returns the state and
/// the deterministic work units spent.
pub fn cold_rebuild(
    pair: &ChurnPair<'_>,
    state: &LogicalState,
    cfg: &ChurnConfig,
) -> (NegotiatedState, u64) {
    let data = &pair.variants[state.variant];
    let k = data.pair.num_interconnections();
    let input = session_input(data, &state.active);
    // Bandwidth only: fresh two-layer load aggregation in flow order
    // (the same order the driver's rebuild path sums in) and a fresh
    // class snapshot — the reference the incremental snapshot must
    // reproduce bit-for-bit.
    let mut classes_up = Vec::new();
    let mut classes_down = Vec::new();
    if cfg.objective == Objective::Bandwidth {
        let mut active_up = SideLoads::zero(pair.caps_up.len());
        let mut active_down = SideLoads::zero(pair.caps_down.len());
        let mut background_up = SideLoads::zero(pair.caps_up.len());
        let mut background_down = SideLoads::zero(pair.caps_down.len());
        for (i, &on) in state.active.iter().enumerate() {
            let f = FlowId::new(i);
            let d = data.default.choice(f);
            let volume = data.flows.flows[i].volume;
            let (up, down) = if on {
                (&mut active_up, &mut active_down)
            } else {
                (&mut background_up, &mut background_down)
            };
            up.add_path(data.paths.up_links(f, d), volume);
            down.add_path(data.paths.down_links(f, d), volume);
        }
        let eff_up: Vec<f64> = active_up
            .loads()
            .iter()
            .zip(background_up.loads())
            .map(|(&a, &b)| a + state.scale * b)
            .collect();
        utilization_classes(&eff_up, &pair.caps_up, &mut classes_up);
        let eff_down: Vec<f64> = active_down
            .loads()
            .iter()
            .zip(background_down.loads())
            .map(|(&a, &b)| a + state.scale * b)
            .collect();
        utilization_classes(&eff_down, &pair.caps_down, &mut classes_down);
    }
    let (mut party_a, mut party_b) = match cfg.objective {
        Objective::Distance => (
            Party::honest("A", DistanceMapper::new(Side::A, &data.flows)),
            Party::honest("B", DistanceMapper::new(Side::B, &data.flows)),
        ),
        Objective::Bandwidth => (
            Party::honest(
                "A",
                BandwidthMapper::new(Side::A, &data.flows, &data.paths, &pair.caps_up)
                    .with_classes(&classes_up),
            ),
            Party::honest(
                "B",
                BandwidthMapper::new(Side::B, &data.flows, &data.paths, &pair.caps_down)
                    .with_classes(&classes_down),
            ),
        ),
    };
    let outcome = negotiate(
        &input,
        &data.default,
        &mut party_a,
        &mut party_b,
        &NexitConfig::win_win(),
    );
    let mut work = 2 * input.flow_ids.len() as u64 * k as u64 + outcome.transcript.len() as u64;

    let mut opt_t = None;
    if state.num_active * k <= cfg.max_lp_variables {
        let mut lp = BandwidthLp::new();
        let view = data.view();
        lp.add_scenario(
            IcxId::new(state.variant),
            &view,
            &data.paths,
            &data.flows,
            &input.flow_ids,
            &data.default,
            &pair.caps_up,
            &pair.caps_down,
        );
        let solved: Result<_, OptimalBandwidthError> =
            lp.solve_failure_scaled(IcxId::new(state.variant), state.scale);
        if let Ok(opt) = solved {
            opt_t = Some(opt.t);
        }
        let stats = lp.warm_stats();
        work += (stats.eta_pivots + stats.refactorizations) as u64;
    }
    (
        NegotiatedState {
            assignment: outcome.assignment,
            gain_a: outcome.gain_a,
            gain_b: outcome.gain_b,
            termination: outcome.termination,
            reassignments: outcome.reassignments,
            opt_t,
        },
        work + 1,
    )
}

// --- deterministic feed generation ------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded initial table membership: roughly 60% of flows active, never
/// fewer than two.
pub fn initial_active(pair: &ChurnPair<'_>, seed: u64) -> Vec<bool> {
    let mut rng = seed ^ 0xA076_1D64_78BD_642F;
    let mut active: Vec<bool> = (0..pair.num_flows())
        .map(|_| splitmix64(&mut rng) % 100 < 60)
        .collect();
    if active.iter().filter(|&&on| on).count() < 2 {
        let second = 1 % active.len();
        active[0] = true;
        active[second] = true;
    }
    active
}

/// Generate a deterministic event feed for one pair: dominated by load
/// drift (~3/4, the growth ladder batched into online steps — traffic
/// shifts far more often than the flow set does), with flow
/// arrivals/departures (~20%) and rare interconnection failures that
/// heal within a few events. Every emitted event is valid for the state
/// it arrives in.
pub fn generate_trace(
    pair: &ChurnPair<'_>,
    initial: &[bool],
    num_events: usize,
    seed: u64,
) -> Vec<ChurnEvent> {
    let failable = pair.failable();
    let mut rng = seed ^ 0x9E6C_63D0_876A_3F6B;
    let mut state = LogicalState::new(initial.to_vec());
    let mut tick = 0u64;
    let mut trace = Vec::with_capacity(num_events);
    for _ in 0..num_events {
        tick += 1 + splitmix64(&mut rng) % 3;
        let roll = splitmix64(&mut rng) % 100;
        let n = state.active.len();
        let kind = if state.variant != 0 && roll < 25 {
            ChurnKind::LinkRestore
        } else if state.variant == 0 && !failable.is_empty() && roll < 4 {
            ChurnKind::LinkFail(failable[(splitmix64(&mut rng) as usize) % failable.len()])
        } else if roll < 80 {
            // 0.70..=1.49 × nominal background.
            ChurnKind::LoadDelta {
                factor: 0.70 + (splitmix64(&mut rng) % 80) as f64 / 100.0,
            }
        } else if roll < 90 {
            // Add a random inactive flow (fall back to drift if full).
            let start = (splitmix64(&mut rng) as usize) % n;
            match (0..n).map(|o| (start + o) % n).find(|&i| !state.active[i]) {
                Some(i) => ChurnKind::FlowAdd(FlowId::new(i)),
                None => ChurnKind::LoadDelta { factor: 1.0 },
            }
        } else {
            // Remove a random active flow, keeping at least two live.
            let start = (splitmix64(&mut rng) as usize) % n;
            match (0..n)
                .map(|o| (start + o) % n)
                .find(|&i| state.active[i])
                .filter(|_| state.num_active > 2)
            {
                Some(i) => ChurnKind::FlowRemove(FlowId::new(i)),
                None => ChurnKind::LoadDelta { factor: 1.0 },
            }
        };
        state.apply(pair, kind);
        trace.push(ChurnEvent { tick, kind });
    }
    trace
}

// --- the sweep ---------------------------------------------------------

/// The sweep's universe: the same 12-ISP topology the fault sweep and
/// the broker determinism suite pin, restricted to pairs with three or
/// more interconnections so failures leave a negotiable pair behind.
pub fn universe() -> Universe {
    TopologyGenerator::new(GeneratorConfig {
        num_isps: 12,
        num_mesh_isps: 0,
        seed: 11,
        ..GeneratorConfig::default()
    })
    .generate()
}

/// One pair's replay results.
struct PairRun {
    latency_ns: Vec<f64>,
    cold_latency_ns: Vec<f64>,
    work: Vec<f64>,
    cold_work: Vec<f64>,
    divergences: usize,
    violations: Vec<String>,
    cached_outcomes: u64,
    incremental_sessions: u64,
    fallback_sessions: u64,
    signature_hits: u64,
    signature_misses: u64,
    rows_refreshed: u64,
    rows_served: u64,
    rows_load_invalidated: u64,
    final_choices: Vec<IcxId>,
    lp_stats: WarmStats,
    lp_skipped: bool,
}

/// Replay one pair's feed through the incremental driver; with
/// `with_cold`, also rebuild every event prefix from scratch and
/// compare (the correctness replay + the cold latency twin).
fn replay_pair(
    pair: &ChurnPair<'_>,
    initial: &[bool],
    trace: &[ChurnEvent],
    cfg: &ChurnConfig,
    with_cold: bool,
) -> PairRun {
    let mut driver = ChurnDriver::new(pair, initial.to_vec(), *cfg);
    let mut run = PairRun {
        latency_ns: Vec::with_capacity(trace.len()),
        cold_latency_ns: Vec::new(),
        work: Vec::with_capacity(trace.len()),
        cold_work: Vec::new(),
        divergences: 0,
        violations: Vec::new(),
        cached_outcomes: 0,
        incremental_sessions: 0,
        fallback_sessions: 0,
        signature_hits: 0,
        signature_misses: 0,
        rows_refreshed: 0,
        rows_served: 0,
        rows_load_invalidated: 0,
        final_choices: Vec::new(),
        lp_stats: WarmStats::default(),
        lp_skipped: !driver.lp_enabled,
    };
    for (idx, event) in trace.iter().enumerate() {
        let start = Instant::now();
        driver.apply(event);
        run.latency_ns.push(start.elapsed().as_nanos() as f64);
        run.work.push(driver.last_work() as f64);
        if with_cold {
            let start = Instant::now();
            let (cold, cold_work) = cold_rebuild(pair, driver.state(), cfg);
            run.cold_latency_ns.push(start.elapsed().as_nanos() as f64);
            run.cold_work.push(cold_work as f64);
            if let Some(diff) = divergence(driver.negotiated(), &cold) {
                run.divergences += 1;
                if run.violations.len() < 3 {
                    run.violations
                        .push(format!("event {idx} ({:?}): {diff}", event.kind));
                }
            }
        }
    }
    run.violations.extend(driver.lp_errors.iter().cloned());
    run.cached_outcomes = driver.cached_outcomes;
    run.incremental_sessions = driver.incremental_sessions;
    run.fallback_sessions = driver.fallback_sessions;
    run.signature_hits = driver.signature_hits;
    run.signature_misses = driver.signature_misses;
    let (refreshed, served, load_invalidated) = driver.cache_stats();
    run.rows_refreshed = refreshed;
    run.rows_served = served;
    run.rows_load_invalidated = load_invalidated;
    run.final_choices = driver.negotiated().assignment.choices().to_vec();
    run.lp_stats = driver.lp_stats();
    run
}

/// Compare incremental and cold states; `None` means identical.
fn divergence(incremental: &NegotiatedState, cold: &NegotiatedState) -> Option<String> {
    if incremental.assignment.choices() != cold.assignment.choices() {
        let first = incremental
            .assignment
            .choices()
            .iter()
            .zip(cold.assignment.choices())
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return Some(format!("assignment diverged (first at flow {first})"));
    }
    if (incremental.gain_a, incremental.gain_b) != (cold.gain_a, cold.gain_b) {
        return Some("gains diverged".into());
    }
    if incremental.termination != cold.termination
        || incremental.reassignments != cold.reassignments
    {
        return Some("termination/reassignment bookkeeping diverged".into());
    }
    match (incremental.opt_t, cold.opt_t) {
        (Some(w), Some(c)) if (w - c).abs() > 1e-6 => {
            Some(format!("warm LP t {w} vs cold {c} beyond 1e-6"))
        }
        (Some(_), None) | (None, Some(_)) => Some("LP evaluated on one path only".into()),
        _ => None,
    }
}

/// Everything `experiments churn` measures.
pub struct ChurnReport {
    /// The objective the sweep negotiated under.
    pub objective: Objective,
    /// Pairs replayed.
    pub pairs: usize,
    /// Total events across all feeds.
    pub events: usize,
    /// Events where the negotiated outcome was provably untouched.
    pub cached_outcomes: u64,
    /// Delta-path re-negotiations (cache-served rows).
    pub incremental_sessions: u64,
    /// Threshold-forced full cold sessions.
    pub fallback_sessions: u64,
    /// Load-signature checks that left every cached row valid.
    pub signature_hits: u64,
    /// Load deltas whose moved classes invalidated at least one row.
    pub signature_misses: u64,
    /// Gain rows (re)computed across all caches.
    pub rows_refreshed: u64,
    /// Gain rows served from the memo without recomputation.
    pub rows_served: u64,
    /// Gain rows dropped by footprint-keyed load invalidation.
    pub rows_load_invalidated: u64,
    /// Prefix replays that did not match the cold rebuild (must be 0).
    pub divergences: usize,
    /// Per-event incremental latency (wall-clock, ns).
    pub latency: StreamingCdf,
    /// Per-event cold-rebuild latency (wall-clock, ns).
    pub cold_latency: StreamingCdf,
    /// Per-event incremental work units (deterministic).
    pub work: StreamingCdf,
    /// Per-event cold work units (deterministic).
    pub cold_work: StreamingCdf,
    /// Aggregate LP warm/cold counters across all retained workspaces.
    pub lp_stats: WarmStats,
    /// Pairs whose baseline LP exceeded the size budget.
    pub lp_skipped_pairs: usize,
    /// Whether 1/2/4-worker reruns were byte-identical.
    pub deterministic: bool,
    /// Final per-pair assignments (for the determinism suite).
    pub final_assignments: Vec<Vec<IcxId>>,
    /// Hard failures; the binary exits non-zero when non-empty.
    pub violations: Vec<String>,
}

/// Run the churn sweep: replay every pair's seeded feed incrementally,
/// verify every event prefix against a from-scratch cold rebuild, then
/// rerun the incremental path at 1, 2 and 4 workers and require
/// byte-identical assignments and work series.
pub fn run(
    max_pairs: usize,
    events_per_pair: usize,
    threads: usize,
    seed: u64,
    objective: Objective,
) -> ChurnReport {
    let u = universe();
    let cfg = ChurnConfig {
        objective,
        ..ChurnConfig::default()
    };
    let eligible = u.eligible_pairs(3, false);
    assert!(
        !eligible.is_empty(),
        "universe has no 3+-interconnection pairs"
    );
    let take = eligible.len().min(max_pairs.max(1));
    let pairs: Vec<ChurnPair<'_>> = eligible[..take]
        .iter()
        .map(|&idx| ChurnPair::build(&u, idx, 2))
        .collect();
    let feeds: Vec<(Vec<bool>, Vec<ChurnEvent>)> = pairs
        .iter()
        .enumerate()
        .map(|(i, pair)| {
            let pair_seed = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let initial = initial_active(pair, pair_seed);
            let trace = generate_trace(pair, &initial, events_per_pair, pair_seed);
            (initial, trace)
        })
        .collect();

    let sweep = |workers: usize, with_cold: bool| -> Vec<PairRun> {
        par_map(workers, pairs.len(), |i| {
            replay_pair(&pairs[i], &feeds[i].0, &feeds[i].1, &cfg, with_cold)
        })
    };

    // Main sweep: incremental replay + per-prefix cold verification.
    let main = sweep(threads, true);

    let mut report = ChurnReport {
        objective,
        pairs: pairs.len(),
        events: feeds.iter().map(|(_, t)| t.len()).sum(),
        cached_outcomes: 0,
        incremental_sessions: 0,
        fallback_sessions: 0,
        signature_hits: 0,
        signature_misses: 0,
        rows_refreshed: 0,
        rows_served: 0,
        rows_load_invalidated: 0,
        divergences: 0,
        latency: StreamingCdf::default(),
        cold_latency: StreamingCdf::default(),
        work: StreamingCdf::default(),
        cold_work: StreamingCdf::default(),
        lp_stats: WarmStats::default(),
        lp_skipped_pairs: 0,
        deterministic: true,
        final_assignments: Vec::new(),
        violations: Vec::new(),
    };
    for run in &main {
        report.cached_outcomes += run.cached_outcomes;
        report.incremental_sessions += run.incremental_sessions;
        report.fallback_sessions += run.fallback_sessions;
        report.signature_hits += run.signature_hits;
        report.signature_misses += run.signature_misses;
        report.rows_refreshed += run.rows_refreshed;
        report.rows_served += run.rows_served;
        report.rows_load_invalidated += run.rows_load_invalidated;
        report.divergences += run.divergences;
        report.latency.extend(run.latency_ns.iter().copied());
        report
            .cold_latency
            .extend(run.cold_latency_ns.iter().copied());
        report.work.extend(run.work.iter().copied());
        report.cold_work.extend(run.cold_work.iter().copied());
        report.lp_stats.absorb(run.lp_stats);
        report.lp_skipped_pairs += usize::from(run.lp_skipped);
        report.final_assignments.push(run.final_choices.clone());
        report.violations.extend(run.violations.iter().cloned());
    }
    if report.divergences > 0 {
        report.violations.push(format!(
            "{} event prefix(es) diverged from the cold rebuild",
            report.divergences
        ));
    }

    // Worker-count determinism: the incremental path must reproduce
    // identical assignments, work series and path counters at 1/2/4.
    for workers in [1usize, 2, 4] {
        let rerun = sweep(workers, false);
        let identical = rerun.iter().zip(&main).all(|(r, m)| {
            r.final_choices == m.final_choices
                && r.work == m.work
                && r.cached_outcomes == m.cached_outcomes
                && r.incremental_sessions == m.incremental_sessions
                && r.fallback_sessions == m.fallback_sessions
                && r.signature_hits == m.signature_hits
                && r.signature_misses == m.signature_misses
                && r.rows_refreshed == m.rows_refreshed
                && r.rows_served == m.rows_served
                && r.rows_load_invalidated == m.rows_load_invalidated
        });
        if !identical {
            report.deterministic = false;
            report.violations.push(format!(
                "sweep diverged between the main run and {workers} worker(s)"
            ));
        }
    }

    // The headline latency claim, gated conservatively: the steady-state
    // incremental median must sit at least 2x under the cold twin's.
    if !report.latency.is_empty() && !report.cold_latency.is_empty() {
        let (p50, cold_p50) = (report.latency.median(), report.cold_latency.median());
        if cold_p50 < 2.0 * p50 {
            report.violations.push(format!(
                "incremental p50 {:.0} ns not >= 2x under cold p50 {:.0} ns",
                p50, cold_p50
            ));
        }
    }

    report
}

/// Print the sweep.
pub fn report(r: &ChurnReport) {
    println!(
        "churn [{}]: {} pairs, {} events ({} outcome-cached, {} incremental sessions, {} cold fallbacks)",
        r.objective.name(),
        r.pairs,
        r.events,
        r.cached_outcomes,
        r.incremental_sessions,
        r.fallback_sessions
    );
    let signature_checks = r.signature_hits + r.signature_misses;
    if signature_checks > 0 {
        println!(
            "load-signature checks: {} hits / {} misses ({:.1}% hit rate)",
            r.signature_hits,
            r.signature_misses,
            100.0 * r.signature_hits as f64 / signature_checks as f64
        );
    }
    println!(
        "gain cache: {} rows refreshed, {} served from memo, {} footprint-invalidated",
        r.rows_refreshed, r.rows_served, r.rows_load_invalidated
    );
    println!(
        "prefix replays vs cold rebuild: {} divergence(s); 1/2/4-worker reruns identical: {}",
        r.divergences, r.deterministic
    );
    r.latency.print("per-event incremental latency (ns)");
    r.cold_latency.print("per-event cold-rebuild latency (ns)");
    if !r.latency.is_empty() && !r.cold_latency.is_empty() {
        println!(
            "latency p50: incremental {:.0} ns vs cold {:.0} ns ({:.1}x); p99: {:.0} vs {:.0} ns ({:.1}x)",
            r.latency.median(),
            r.cold_latency.median(),
            r.cold_latency.median() / r.latency.median().max(1.0),
            r.latency.percentile(99.0),
            r.cold_latency.percentile(99.0),
            r.cold_latency.percentile(99.0) / r.latency.percentile(99.0).max(1.0),
        );
    }
    r.work
        .print("per-event incremental work units (deterministic)");
    crate::experiments::bandwidth::print_lp_stats(&r.lp_stats);
    println!(
        "lp warm re-entry: {} of {} solves warm ({:.1}%), {} pair(s) size-skipped",
        r.lp_stats.warm_reentries(),
        r.lp_stats.total_solves(),
        100.0 * r.lp_stats.warm_fraction(),
        r.lp_skipped_pairs
    );
    for v in &r.violations {
        println!("VIOLATION: {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_has_no_violations() {
        let r = run(2, 30, 2, 7, Objective::Distance);
        assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
        assert_eq!(r.divergences, 0);
        assert!(r.deterministic);
        assert!(r.cached_outcomes > 0, "load events must cache the outcome");
        assert!(
            r.incremental_sessions > 0,
            "flow events must take the delta path"
        );
        assert!(
            r.lp_stats.warm_reentries() > 0,
            "baseline must re-enter warm"
        );
    }

    #[test]
    fn small_bandwidth_sweep_has_no_violations() {
        let r = run(2, 30, 2, 7, Objective::Bandwidth);
        assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
        assert_eq!(r.divergences, 0);
        assert!(r.deterministic);
        assert!(
            r.signature_hits + r.signature_misses > 0,
            "load deltas must consult the signature"
        );
        assert!(
            r.rows_served > 0,
            "footprint invalidation must leave rows to serve from the memo"
        );
        assert!(
            r.rows_load_invalidated > 0,
            "moved classes must invalidate footprint-intersecting rows"
        );
    }

    #[test]
    fn unmoved_classes_are_a_signature_hit() {
        let u = universe();
        let idx = u.eligible_pairs(3, false)[0];
        let pair = ChurnPair::build(&u, idx, 2);
        let initial = initial_active(&pair, 3);
        let cfg = ChurnConfig {
            objective: Objective::Bandwidth,
            ..ChurnConfig::default()
        };
        let mut driver = ChurnDriver::new(&pair, initial, cfg);
        // Re-asserting the current background scale moves no effective
        // load, so no utilization class moves, no row is invalidated,
        // and the outcome cache answers without renegotiating.
        driver.apply(&ChurnEvent {
            tick: 1,
            kind: ChurnKind::LoadDelta { factor: 1.0 },
        });
        assert_eq!(driver.signature_hits, 1);
        assert_eq!(driver.signature_misses, 0);
        assert_eq!(driver.cached_outcomes, 1);
        let (_, _, load_invalidated) = driver.cache_stats();
        assert_eq!(load_invalidated, 0);
    }

    #[test]
    fn link_failures_force_the_cold_fallback() {
        let u = universe();
        let idx = u.eligible_pairs(3, false)[0];
        let pair = ChurnPair::build(&u, idx, 2);
        let failable = pair.failable();
        assert!(!failable.is_empty());
        let initial = initial_active(&pair, 3);
        let mut driver = ChurnDriver::new(&pair, initial, ChurnConfig::default());
        let before = driver.fallback_sessions;
        driver.apply(&ChurnEvent {
            tick: 1,
            kind: ChurnKind::LinkFail(failable[0]),
        });
        assert_eq!(driver.fallback_sessions, before + 1);
        assert_ne!(driver.state().variant, 0);
        driver.apply(&ChurnEvent {
            tick: 2,
            kind: ChurnKind::LinkRestore,
        });
        assert_eq!(driver.state().variant, 0);
    }

    #[test]
    fn every_prefix_matches_the_cold_rebuild() {
        for objective in [Objective::Distance, Objective::Bandwidth] {
            let u = universe();
            let idx = u.eligible_pairs(3, false)[0];
            let pair = ChurnPair::build(&u, idx, 2);
            let initial = initial_active(&pair, 21);
            let trace = generate_trace(&pair, &initial, 25, 21);
            let cfg = ChurnConfig {
                objective,
                ..ChurnConfig::default()
            };
            let mut driver = ChurnDriver::new(&pair, initial, cfg);
            for event in &trace {
                driver.apply(event);
                let (cold, _) = cold_rebuild(&pair, driver.state(), &cfg);
                assert_eq!(
                    divergence(driver.negotiated(), &cold),
                    None,
                    "[{}] prefix diverged at {event:?}",
                    objective.name()
                );
            }
        }
    }

    #[test]
    fn traces_are_seed_deterministic() {
        let u = universe();
        let idx = u.eligible_pairs(3, false)[0];
        let pair = ChurnPair::build(&u, idx, 2);
        let initial = initial_active(&pair, 5);
        let t1 = generate_trace(&pair, &initial, 40, 5);
        let t2 = generate_trace(&pair, &initial, 40, 5);
        assert_eq!(t1, t2);
        let t3 = generate_trace(&pair, &initial, 40, 6);
        assert_ne!(t1, t3, "different seeds should differ");
        assert!(t1.windows(2).all(|w| w[0].tick < w[1].tick));
    }
}
