//! The paper's motivating hand-built scenarios (Figures 1 and 2).

use nexit_topology::{GeoPoint, Interconnection, IspId, IspPair, IspTopology, Link, Pop, PopId};

/// The Figure 1 / Figure 2 style ladder: two ISPs, each a vertical
/// 3-PoP chain (top, middle, bottom), joined by three parallel
/// interconnections. Interconnection ids: 0 = top, 1 = middle, 2 = bottom.
pub struct LadderScenario {
    /// ISP-A topology.
    pub a: IspTopology,
    /// ISP-B topology.
    pub b: IspTopology,
    /// The pair with its three interconnections.
    pub pair: IspPair,
}

/// Interconnection indices for readability.
pub mod icx {
    use nexit_topology::IcxId;
    /// Top interconnection.
    pub const TOP: IcxId = IcxId(0);
    /// Middle interconnection.
    pub const MIDDLE: IcxId = IcxId(1);
    /// Bottom interconnection.
    pub const BOTTOM: IcxId = IcxId(2);
}

/// Build the ladder. `rung_km` is the vertical spacing between PoPs.
pub fn ladder(rung_km: f64) -> LadderScenario {
    // Place PoPs along meridians; ~111 km per degree of latitude.
    let deg = rung_km / 111.0;
    let build = |id: u32, name: &str, lon: f64| {
        let pops = vec![
            Pop {
                city: format!("{name}-top"),
                geo: GeoPoint::new(2.0 * deg, lon),
                weight: 1.0,
            },
            Pop {
                city: format!("{name}-mid"),
                geo: GeoPoint::new(deg, lon),
                weight: 1.0,
            },
            Pop {
                city: format!("{name}-bot"),
                geo: GeoPoint::new(0.0, lon),
                weight: 1.0,
            },
        ];
        let links = vec![
            Link {
                a: PopId(0),
                b: PopId(1),
                weight: rung_km,
                length_km: rung_km,
            },
            Link {
                a: PopId(1),
                b: PopId(2),
                weight: rung_km,
                length_km: rung_km,
            },
        ];
        IspTopology::new(IspId(id), name, pops, links, false).unwrap()
    };
    let a = build(0, "ISP-A", 0.0);
    let b = build(1, "ISP-B", 1.0);
    let pair = IspPair::new(
        &a,
        &b,
        (0..3)
            .map(|i| Interconnection {
                pop_a: PopId(i),
                pop_b: PopId(i),
                length_km: 80.0,
            })
            .collect(),
    )
    .unwrap();
    LadderScenario { a, b, pair }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_routing::{early_exit, ShortestPaths};
    use nexit_topology::PairView;

    #[test]
    fn ladder_geometry() {
        let s = ladder(500.0);
        assert_eq!(s.a.num_pops(), 3);
        assert_eq!(s.pair.num_interconnections(), 3);
        // Vertical spacing approximately the requested rung.
        let d = s.a.pop(PopId(0)).geo.distance_km(&s.a.pop(PopId(1)).geo);
        assert!((d - 500.0).abs() < 5.0, "rung = {d}");
    }

    #[test]
    fn early_exit_uses_nearest_rung() {
        let s = ladder(500.0);
        let view = PairView::new(&s.a, &s.b, &s.pair);
        let sp_a = ShortestPaths::compute(&s.a);
        assert_eq!(early_exit(&view, &sp_a, PopId(0)), icx::TOP);
        assert_eq!(early_exit(&view, &sp_a, PopId(1)), icx::MIDDLE);
        assert_eq!(early_exit(&view, &sp_a, PopId(2)), icx::BOTTOM);
    }
}
