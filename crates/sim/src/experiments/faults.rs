//! Fault-tolerance sweep (`experiments faults`).
//!
//! Serves real topology-derived negotiation pairs through the broker
//! with the ARQ reliability layer and graceful degradation enabled,
//! while the in-memory links drop, corrupt, duplicate and reorder
//! frames at configurable rates. Three questions, answered with hard
//! exit codes rather than prose:
//!
//! 1. **Recovery**: below saturation, every recovered session must be
//!    byte-identical to the fault-free engine reference — the headline
//!    cell (1% drop + 1% corrupt, default retry budget) must keep at
//!    least 99% of ≥1k sessions identical with zero sessions lost.
//! 2. **Degradation**: sessions that exhaust their retry budget must
//!    fall back to the pair's default early-exit assignment — every
//!    pair stays usable even on a dead link. The MEL cost of that
//!    fallback (degraded vs negotiated routing, capacities from the
//!    paper's §5.2 model) streams through a [`StreamingCdf`].
//! 3. **Determinism**: the headline cell reruns at 1, 2 and 4 workers
//!    and must produce byte-identical results and fault counters.
//!
//! Any violation is collected into [`FaultsReport::violations`] and the
//! binary exits non-zero, making this sweep a CI gate.

use crate::cdf::StreamingCdf;
use crate::PairData;
use nexit_broker::{Broker, BrokerConfig, PairOutcome, PairResult, ReliableConfig, SessionSpec};
use nexit_core::{
    negotiate, DistanceMapper, NegotiationOutcome, NexitConfig, Party, SessionInput, Side,
};
use nexit_metrics::side_mels;
use nexit_proto::channel::FaultConfig;
use nexit_routing::{Assignment, FlowId, PairFlows};
use nexit_topology::{GeneratorConfig, TopologyGenerator, Universe};
use nexit_workload::{assign_capacities, link_loads, CapacityModel, WorkloadModel};

/// The sweep's universe: the same 12-ISP topology the broker
/// determinism suite pins, so measured recovery numbers and test
/// guarantees describe the same sessions.
fn universe() -> Universe {
    TopologyGenerator::new(GeneratorConfig {
        num_isps: 12,
        num_mesh_isps: 0,
        seed: 11,
        ..GeneratorConfig::default()
    })
    .generate()
}

fn session_input(flows: &PairFlows, default: &Assignment, alts: usize) -> SessionInput {
    SessionInput {
        flow_ids: (0..flows.len()).map(FlowId::new).collect(),
        defaults: default.choices().to_vec(),
        volumes: flows.flows.iter().map(|f| f.volume).collect(),
        num_alternatives: alts,
    }
}

fn build_pairs(u: &Universe) -> Vec<PairData<'_>> {
    u.eligible_pairs(2, true)
        .into_iter()
        .map(|idx| {
            let pair = &u.pairs[idx];
            let a = &u.isps[pair.isp_a.index()];
            let b = &u.isps[pair.isp_b.index()];
            PairData::build(a, b, pair.clone(), WorkloadModel::Identical)
        })
        .collect()
}

fn spec_for<'a>(data: &'a PairData<'_>) -> SessionSpec<'a> {
    let alts = data.pair.num_interconnections();
    SessionSpec::honest(
        session_input(&data.flows, &data.default, alts),
        data.default.clone(),
        DistanceMapper::new(Side::A, &data.flows),
        DistanceMapper::new(Side::B, &data.flows),
        NexitConfig::win_win(),
    )
}

fn engine_reference(data: &PairData<'_>) -> NegotiationOutcome {
    let alts = data.pair.num_interconnections();
    let mut pa = Party::honest("A", DistanceMapper::new(Side::A, &data.flows));
    let mut pb = Party::honest("B", DistanceMapper::new(Side::B, &data.flows));
    negotiate(
        &session_input(&data.flows, &data.default, alts),
        &data.default,
        &mut pa,
        &mut pb,
        &NexitConfig::win_win(),
    )
}

fn matches_reference(reference: &NegotiationOutcome, out: &PairOutcome) -> bool {
    reference.assignment.choices() == out.a.assignment.choices()
        && out.a.assignment == out.b.assignment
        && reference.gain_a == out.a.my_gain
        && reference.gain_b == out.b.my_gain
        && reference.termination == out.a.termination
        && reference.reassignments == out.a.reassignments
}

/// MEL of an assignment over a pair, with link capacities assigned from
/// the default (pre-negotiation) loads per the paper's §5.2 model. The
/// degraded-cost ratio divides the default assignment's MEL by the
/// negotiated one's, so `>= 1` means degradation costs headroom.
fn mel_cost_ratio(data: &PairData<'_>, negotiated: &Assignment) -> f64 {
    let view = data.view();
    let default_loads = link_loads(&view, &data.paths, &data.flows, &data.default);
    let caps_up = assign_capacities(&CapacityModel::default(), &default_loads.up);
    let caps_down = assign_capacities(&CapacityModel::default(), &default_loads.down);
    let (u, d) = side_mels(&default_loads, &caps_up, &caps_down);
    let mel_default = u.max(d);
    let negotiated_loads = link_loads(&view, &data.paths, &data.flows, negotiated);
    let (u, d) = side_mels(&negotiated_loads, &caps_up, &caps_down);
    let mel_negotiated = u.max(d);
    if mel_negotiated > 0.0 {
        mel_default / mel_negotiated
    } else {
        1.0
    }
}

/// One sweep cell's classified outcomes.
#[derive(Debug, Clone)]
pub struct FaultsCell {
    /// Human-readable cell description (rates and retry budget).
    pub label: String,
    /// Sessions served in this cell.
    pub sessions: usize,
    /// Negotiated sessions byte-identical to the engine reference.
    pub identical: usize,
    /// Negotiated sessions that diverged from the reference (always a
    /// violation) plus degraded sessions carrying the wrong fallback.
    pub mismatched: usize,
    /// Sessions that fell back to the default assignment.
    pub degraded: usize,
    /// Sessions lost outright (always a violation: degradation is on).
    pub failed: usize,
    /// Negotiated sessions whose links injected at least one fault.
    pub recovered: usize,
    /// ARQ retransmissions across the cell.
    pub retransmits: u64,
}

/// Everything `experiments faults` measures.
#[derive(Debug, Clone)]
pub struct FaultsReport {
    /// Distinct topology pairs behind the replicated sessions.
    pub pairs: usize,
    /// The acceptance cell: 1% drop + 1% corrupt, default retry budget.
    pub headline: FaultsCell,
    /// Rate × retry-budget grid plus the mixed-fault and dead-link cells.
    pub grid: Vec<FaultsCell>,
    /// Whether the headline cell was byte-identical at 1, 2 and 4 workers.
    pub deterministic: bool,
    /// Degraded-vs-negotiated MEL cost ratio, one sample per degraded
    /// session anywhere in the sweep.
    pub mel_ratio: StreamingCdf,
    /// Hard failures; the binary exits non-zero when non-empty.
    pub violations: Vec<String>,
}

struct CellPlan {
    label: String,
    faults: FaultConfig,
    reliability: ReliableConfig,
    sessions: usize,
}

/// Serve one cell and classify every outcome against the references.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    pairs: &[PairData<'_>],
    references: &[NegotiationOutcome],
    mel_ratios: &[f64],
    plan: &CellPlan,
    workers: usize,
    seed: u64,
    mel_cdf: &mut StreamingCdf,
    violations: &mut Vec<String>,
) -> (FaultsCell, Vec<PairResult>) {
    let specs: Vec<_> = (0..plan.sessions)
        .map(|i| {
            let link_seed = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            spec_for(&pairs[i % pairs.len()]).with_faults(plan.faults, link_seed)
        })
        .collect();
    let config = BrokerConfig::with_workers(workers)
        .with_reliability(plan.reliability)
        .with_degradation();
    let run = Broker::new(config).run_pairs(specs);

    let mut cell = FaultsCell {
        label: plan.label.clone(),
        sessions: plan.sessions,
        identical: 0,
        mismatched: 0,
        degraded: 0,
        failed: 0,
        recovered: run.stats.recovered,
        retransmits: run.stats.retransmits,
    };
    for (i, result) in run.results.iter().enumerate() {
        let p = i % pairs.len();
        match result {
            PairResult::Negotiated(out) if matches_reference(&references[p], out) => {
                cell.identical += 1;
            }
            PairResult::Negotiated(_) => cell.mismatched += 1,
            PairResult::Degraded { assignment, .. } => {
                cell.degraded += 1;
                if assignment != &pairs[p].default {
                    cell.mismatched += 1;
                } else {
                    mel_cdf.push(mel_ratios[p]);
                }
            }
            PairResult::Failed(_) => cell.failed += 1,
        }
    }
    if cell.mismatched > 0 {
        violations.push(format!(
            "{}: {} session(s) diverged from the fault-free reference",
            cell.label, cell.mismatched
        ));
    }
    if cell.failed > 0 {
        violations.push(format!(
            "{}: {} session(s) lost despite degradation being enabled",
            cell.label, cell.failed
        ));
    }
    if cell.identical + cell.degraded + cell.failed != cell.sessions {
        violations.push(format!(
            "{}: {} + {} + {} sessions accounted, {} submitted",
            cell.label, cell.identical, cell.degraded, cell.failed, cell.sessions
        ));
    }
    (cell, run.results)
}

/// Run the full sweep: the headline acceptance cell (at 1, 2 and 4
/// workers), the rate × retry-budget grid, the mixed-fault cell and the
/// dead-link cell. `headline_sessions` sizes the acceptance cell (the
/// acceptance criterion assumes ≥ 1000); grid cells run at a quarter of
/// that. `workers` drives the grid cells (0 = all cores) — outcomes are
/// worker-count independent either way, and the headline sweep proves it.
pub fn run(headline_sessions: usize, workers: usize, seed: u64) -> FaultsReport {
    let u = universe();
    let pairs = build_pairs(&u);
    assert!(!pairs.is_empty(), "universe has no eligible pairs");
    let references: Vec<_> = pairs.iter().map(engine_reference).collect();
    let mel_ratios: Vec<f64> = pairs
        .iter()
        .zip(&references)
        .map(|(data, reference)| mel_cost_ratio(data, &reference.assignment))
        .collect();

    let mut mel_cdf = StreamingCdf::default();
    let mut violations = Vec::new();

    // Headline acceptance cell, rerun at 1/2/4 workers: classification
    // comes from the first run; the reruns pin worker-count independence.
    let headline_plan = CellPlan {
        label: "drop 1% + corrupt 1%, budget 8 (headline)".into(),
        faults: FaultConfig {
            drop_chance: 0.01,
            corrupt_chance: 0.01,
            ..FaultConfig::RELIABLE
        },
        reliability: ReliableConfig::default(),
        sessions: headline_sessions.max(pairs.len()),
    };
    let mut headline: Option<FaultsCell> = None;
    let mut first_outcome: Option<(Vec<PairResult>, usize, u64)> = None;
    let mut deterministic = true;
    for w in [1usize, 2, 4] {
        let (cell, results) = run_cell(
            &pairs,
            &references,
            &mel_ratios,
            &headline_plan,
            w,
            seed,
            &mut mel_cdf,
            &mut violations,
        );
        match &first_outcome {
            None => {
                first_outcome = Some((results, cell.recovered, cell.retransmits));
                headline = Some(cell);
            }
            Some((reference_results, recovered, retransmits)) => {
                if *reference_results != results
                    || *recovered != cell.recovered
                    || *retransmits != cell.retransmits
                {
                    deterministic = false;
                    violations.push(format!("headline cell diverged between 1 and {w} workers"));
                }
            }
        }
    }
    let headline = headline.expect("headline cell ran");
    let identical_fraction = headline.identical as f64 / headline.sessions as f64;
    if identical_fraction < 0.99 {
        violations.push(format!(
            "headline: only {:.2}% of {} sessions byte-identical (need >= 99%)",
            identical_fraction * 100.0,
            headline.sessions
        ));
    }

    // Rate × retry-budget grid, plus a mixed-fault cell and a dead-link
    // cell (the latter guarantees the degradation path and the MEL cost
    // CDF are exercised even when every lossy cell fully recovers).
    let grid_sessions = (headline_plan.sessions / 4).max(pairs.len());
    let mut plans = Vec::new();
    for &rate in &[0.01f64, 0.05] {
        for &budget in &[2usize, 8, 16] {
            plans.push(CellPlan {
                label: format!(
                    "drop {p}% + corrupt {p}%, budget {budget}",
                    p = rate * 100.0
                ),
                faults: FaultConfig {
                    drop_chance: rate,
                    corrupt_chance: rate,
                    ..FaultConfig::RELIABLE
                },
                reliability: ReliableConfig {
                    retry_budget: budget,
                    ..ReliableConfig::default()
                },
                sessions: grid_sessions,
            });
        }
    }
    plans.push(CellPlan {
        label: "all four faults 5%, budget 8".into(),
        faults: FaultConfig {
            drop_chance: 0.05,
            corrupt_chance: 0.05,
            duplicate_chance: 0.05,
            reorder_chance: 0.05,
        },
        reliability: ReliableConfig::default(),
        sessions: grid_sessions,
    });
    plans.push(CellPlan {
        label: "dead link (drop 100%), budget 8".into(),
        faults: FaultConfig {
            drop_chance: 1.0,
            ..FaultConfig::RELIABLE
        },
        reliability: ReliableConfig::default(),
        sessions: pairs.len(),
    });

    let mut grid = Vec::new();
    for plan in &plans {
        let (cell, _) = run_cell(
            &pairs,
            &references,
            &mel_ratios,
            plan,
            workers,
            seed,
            &mut mel_cdf,
            &mut violations,
        );
        grid.push(cell);
    }
    // The dead-link cell must degrade every session — no pair may become
    // unusable, whatever its link does.
    let dead = grid.last().expect("dead-link cell ran");
    if dead.degraded != dead.sessions {
        violations.push(format!(
            "dead-link cell: {} of {} sessions degraded (all must)",
            dead.degraded, dead.sessions
        ));
    }

    FaultsReport {
        pairs: pairs.len(),
        headline,
        grid,
        deterministic,
        mel_ratio: mel_cdf,
        violations,
    }
}

fn report_cell(cell: &FaultsCell) {
    println!(
        "  {:<42} {:>6} sessions: {:>6} identical, {:>4} degraded, {:>3} failed, \
         {:>4} mismatched; {:>5} recovered, {:>7} retransmits",
        cell.label,
        cell.sessions,
        cell.identical,
        cell.degraded,
        cell.failed,
        cell.mismatched,
        cell.recovered,
        cell.retransmits,
    );
}

/// Print the sweep.
pub fn report(r: &FaultsReport) {
    println!(
        "faults: {} real topology pairs, ARQ + degradation enabled",
        r.pairs
    );
    report_cell(&r.headline);
    for cell in &r.grid {
        report_cell(cell);
    }
    println!(
        "headline: {:.2}% of {} sessions byte-identical to the fault-free engine",
        100.0 * r.headline.identical as f64 / r.headline.sessions as f64,
        r.headline.sessions
    );
    println!(
        "headline rerun at 1/2/4 workers byte-identical: {}",
        r.deterministic
    );
    r.mel_ratio
        .print("degraded-vs-negotiated MEL cost ratio (per degraded session)");
    for v in &r.violations {
        println!("VIOLATION: {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_has_no_violations() {
        // A scaled-down sweep must still satisfy every acceptance gate:
        // full recovery in the headline cell, worker-count determinism,
        // all dead-link sessions degraded, nothing lost anywhere.
        let r = run(40, 2, 5);
        assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
        assert!(r.deterministic);
        assert_eq!(r.headline.identical, r.headline.sessions);
        let dead = r.grid.last().unwrap();
        assert_eq!(dead.degraded, dead.sessions);
        assert!(!r.mel_ratio.is_empty(), "dead cell must feed the MEL CDF");
        assert!(r.mel_ratio.percentile(0.0) > 0.0, "MEL ratios are positive");
    }
}
