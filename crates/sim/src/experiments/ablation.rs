//! Robustness ablations the paper reports in passing.
//!
//! * **Preference range** (§5): "increasing the range [beyond ±10] does
//!   not lead to noticeable increase in performance" — sweep `P`.
//! * **Grouped negotiation** (§5.1): negotiating in separate groups
//!   "does not provide as much benefit as negotiating over the entire
//!   set" — sweep group counts.
//! * **Alternate models** (§5.2): identical/uniform PoP weights,
//!   power-of-two capacities, max/average backup rules — the results
//!   should stay qualitatively similar.

use crate::experiments::bandwidth::PairFailureSweep;
use crate::experiments::distance::build_pair_run;
use crate::pairdata::ExpConfig;
use crate::parallel::{par_map, par_map_with};
use crate::twoway::{twoway_total_distance, TwoWayDistanceMapper};
use nexit_baselines::{negotiate_in_groups, BandwidthLp};
use nexit_core::{negotiate, NexitConfig, Party, Side, TableArena};
use nexit_lp::WarmStats;
use nexit_metrics::percent_gain;
use nexit_topology::Universe;
use nexit_workload::{assign_capacities, BackupRule, CapacityModel, WorkloadModel};

/// Preference-range sweep: median per-pair total distance gain for each P.
pub fn preference_range_sweep(
    universe: &Universe,
    cfg: &ExpConfig,
    ranges: &[i32],
) -> Vec<(i32, f64)> {
    let mut eligible = universe.eligible_pairs(2, true);
    eligible.truncate(cfg.max_pairs.unwrap_or(40).min(40)); // sweep uses a subset
    ranges
        .iter()
        .map(|&p| {
            let config = NexitConfig {
                pref_range: p,
                ..NexitConfig::win_win()
            };
            let gains = par_map(cfg.threads, eligible.len(), |i| {
                pair_total_gain(universe, eligible[i], &config)
            });
            let median = crate::cdf::Cdf::new(gains).median();
            (p, median)
        })
        .collect()
}

/// One pair's total distance gain under `config` (shared by the
/// preference-range sweep and the mode comparison).
fn pair_total_gain(universe: &Universe, idx: usize, config: &NexitConfig) -> f64 {
    let run = build_pair_run(universe, idx);
    let session = &run.session;
    let mut a = Party::honest(
        "A",
        TwoWayDistanceMapper::new(Side::A, &run.fwd.flows, &run.rev.flows, session.n_fwd),
    );
    let mut b = Party::honest(
        "B",
        TwoWayDistanceMapper::new(Side::B, &run.fwd.flows, &run.rev.flows, session.n_fwd),
    );
    let outcome = negotiate(&session.input, &session.default, &mut a, &mut b, config);
    let (f, r) = session.split(&outcome.assignment);
    let d = twoway_total_distance(
        &run.fwd.flows,
        &run.rev.flows,
        &run.fwd.default,
        &run.rev.default,
    );
    let n = twoway_total_distance(&run.fwd.flows, &run.rev.flows, &f, &r);
    percent_gain(d, n)
}

/// Group-count sweep: median per-pair total distance gain for each count.
pub fn group_sweep(
    universe: &Universe,
    cfg: &ExpConfig,
    group_counts: &[usize],
) -> Vec<(usize, f64)> {
    let mut eligible = universe.eligible_pairs(2, true);
    eligible.truncate(cfg.max_pairs.unwrap_or(40).min(40));
    group_counts
        .iter()
        .map(|&g| {
            let gains = par_map(cfg.threads, eligible.len(), |i| {
                let idx = eligible[i];
                let run = build_pair_run(universe, idx);
                let session = &run.session;
                let mut a = Party::honest(
                    "A",
                    TwoWayDistanceMapper::new(
                        Side::A,
                        &run.fwd.flows,
                        &run.rev.flows,
                        session.n_fwd,
                    ),
                );
                let mut b = Party::honest(
                    "B",
                    TwoWayDistanceMapper::new(
                        Side::B,
                        &run.fwd.flows,
                        &run.rev.flows,
                        session.n_fwd,
                    ),
                );
                let (assignment, _) = negotiate_in_groups(
                    &session.input,
                    &session.default,
                    &mut a,
                    &mut b,
                    &NexitConfig::win_win(),
                    g,
                );
                let (f, r) = session.split(&assignment);
                let d = twoway_total_distance(
                    &run.fwd.flows,
                    &run.rev.flows,
                    &run.fwd.default,
                    &run.rev.default,
                );
                let n = twoway_total_distance(&run.fwd.flows, &run.rev.flows, &f, &r);
                percent_gain(d, n)
            });
            (g, crate::cdf::Cdf::new(gains).median())
        })
        .collect()
}

/// One row of the alternate-models grid: median upstream MEL ratios for
/// default and negotiated routing.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRow {
    /// Human-readable model description.
    pub label: String,
    /// Median default-MEL / optimal-MEL (upstream).
    pub median_default_ratio: f64,
    /// Median negotiated-MEL / optimal-MEL (upstream).
    pub median_negotiated_ratio: f64,
    /// Scenario count.
    pub scenarios: usize,
}

/// The alternate-model grid's results: one row per (workload, capacity)
/// cell plus the LP session counters recording how often the
/// coefficient-patch warm path held across the grid.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelGridResults {
    /// One row per grid cell, workloads outer, capacity models inner.
    pub rows: Vec<ModelRow>,
    /// Aggregate warm/cold/refresh counters of the per-pair LP sessions.
    pub lp_stats: WarmStats,
}

/// The §5.2 alternate-model grid.
///
/// The grid re-solves near-identical LPs for every (workload, capacity)
/// cell: for one pair, every cell shares the scenario skeletons'
/// sparsity pattern — only volumes (workload) and capacities (capacity
/// model) change. Each pair therefore keeps **one** [`BandwidthLp`]
/// session across the whole grid: the first cell registers each
/// scenario's skeleton ([`BandwidthLp::update_scenario`]), capacity
/// cells re-solve through [`BandwidthLp::solve_with_model`]
/// (`-capacity` coefficient patch), and workload changes re-register
/// the skeleton while retaining the simplex workspace — so every
/// re-solve after each scenario's first enters the revised simplex's
/// coefficient-refresh warm path instead of cold-starting.
pub fn model_grid(universe: &Universe, cfg: &ExpConfig) -> ModelGridResults {
    let workloads = [
        ("gravity", WorkloadModel::Gravity),
        ("identical", WorkloadModel::Identical),
        ("uniform", WorkloadModel::Uniform { seed: cfg.seed }),
    ];
    let capacities = [
        ("median-backup", CapacityModel::default()),
        (
            "pow2",
            CapacityModel {
                power_of_two: true,
                ..CapacityModel::default()
            },
        ),
        (
            "max-backup",
            CapacityModel {
                backup: BackupRule::Max,
                ..CapacityModel::default()
            },
        ),
    ];
    let num_cells = workloads.len() * capacities.len();
    let mut eligible = universe.eligible_pairs(3, false);
    eligible.truncate(cfg.max_pairs.unwrap_or(20).min(20));

    // Per pair: per-cell (default ratios, negotiated ratios) in scenario
    // order, plus the pair's LP counters. The LP session is pair-scoped
    // and spans the whole grid (warm starts), the arena worker-scoped
    // (buffer reuse) — collected by pair index, so the output is
    // thread-count independent.
    let per_pair = par_map_with(cfg.threads, eligible.len(), TableArena::new, |arena, i| {
        let mut cells: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); num_cells];
        // One sweep per workload; all stay alive so the LP session can
        // borrow each one's pair data across the capacity cells.
        let sweeps: Vec<PairFailureSweep<'_>> = workloads
            .iter()
            .map(|&(_, workload)| {
                let sub_cfg = ExpConfig {
                    workload,
                    ..cfg.clone()
                };
                PairFailureSweep::build(universe, eligible[i], &sub_cfg, &CapacityModel::default())
            })
            .collect();
        let mut session = BandwidthLp::new();
        for (wi, sweep) in sweeps.iter().enumerate() {
            for (ci, (_, capacity)) in capacities.iter().enumerate() {
                let caps_up = assign_capacities(capacity, &sweep.pre_loads.up);
                let caps_down = assign_capacities(capacity, &sweep.pre_loads.down);
                let (def, neg) = &mut cells[wi * capacities.len() + ci];
                for scenario in &sweep.scenarios {
                    let vars =
                        scenario.impacted.len() * scenario.data.pair.num_interconnections() + 1;
                    if vars > cfg.max_lp_variables {
                        continue;
                    }
                    let opt = if ci == 0 {
                        // New workload: re-register the skeleton (new
                        // volumes/residuals), keeping the workspace.
                        let view = scenario.data.view();
                        session.update_scenario(
                            scenario.failed,
                            &view,
                            &scenario.data.paths,
                            &scenario.data.flows,
                            &scenario.impacted,
                            &scenario.data.default,
                            &caps_up,
                            &caps_down,
                        );
                        session.solve_failure(scenario.failed)
                    } else {
                        // Same workload, new capacity model: patch the
                        // `-capacity` coefficients in place.
                        session.solve_with_model(scenario.failed, &caps_up, &caps_down)
                    };
                    let Ok(opt) = opt else {
                        continue;
                    };
                    let opt_up = opt.side_mel(&caps_up, true);
                    if opt_up < 1e-9 {
                        continue;
                    }
                    let (def_up, _) =
                        scenario.mels_with_caps(&scenario.data.default, &caps_up, &caps_down);
                    def.push(def_up / opt_up);
                    let negotiated = scenario.negotiate_bandwidth_with(arena, &caps_up, &caps_down);
                    let (neg_up, _) = scenario.mels_with_caps(&negotiated, &caps_up, &caps_down);
                    neg.push(neg_up / opt_up);
                }
            }
        }
        (cells, session.warm_stats())
    });

    let mut merged: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); num_cells];
    let mut out = ModelGridResults::default();
    for (cells, stats) in per_pair {
        for (slot, (def, neg)) in merged.iter_mut().zip(cells) {
            slot.0.extend(def);
            slot.1.extend(neg);
        }
        out.lp_stats.absorb(stats);
    }
    for (wi, (wname, _)) in workloads.iter().enumerate() {
        for (ci, (cname, _)) in capacities.iter().enumerate() {
            let (def, neg) = &merged[wi * capacities.len() + ci];
            if def.is_empty() {
                continue;
            }
            out.rows.push(ModelRow {
                label: format!("{wname} + {cname}"),
                median_default_ratio: crate::cdf::Cdf::new(def.clone()).median(),
                median_negotiated_ratio: crate::cdf::Cdf::new(neg.clone()).median(),
                scenarios: def.len(),
            });
        }
    }
    out
}

/// Protocol-mode comparison (why the experiments use the credit mode):
/// median total gain and worst individual gain per mode, over a subset of
/// distance pairs.
pub fn mode_comparison(universe: &Universe, cfg: &ExpConfig) -> Vec<(String, f64, f64)> {
    use nexit_core::{AcceptRule, StopPolicy};
    let mut eligible = universe.eligible_pairs(2, true);
    eligible.truncate(cfg.max_pairs.unwrap_or(40).min(40));
    let modes: Vec<(&str, NexitConfig)> = vec![
        ("paper-strict (always+early)", NexitConfig::default()),
        (
            "negotiate-all (always)",
            NexitConfig {
                stop: StopPolicy::NegotiateAll,
                ..NexitConfig::default()
            },
        ),
        (
            "zero-credit veto",
            NexitConfig {
                accept: AcceptRule::VetoNegativeCumulative,
                stop: StopPolicy::NegotiateAll,
                ..NexitConfig::default()
            },
        ),
        ("credit veto + rollback", NexitConfig::win_win()),
    ];
    let mut rows = Vec::new();
    for (name, config) in modes {
        // Per pair: (total gain, worst of the two per-ISP gains).
        let per_pair = par_map(cfg.threads, eligible.len(), |i| {
            let run = build_pair_run(universe, eligible[i]);
            let session = &run.session;
            let mut a = Party::honest(
                "A",
                TwoWayDistanceMapper::new(Side::A, &run.fwd.flows, &run.rev.flows, session.n_fwd),
            );
            let mut b = Party::honest(
                "B",
                TwoWayDistanceMapper::new(Side::B, &run.fwd.flows, &run.rev.flows, session.n_fwd),
            );
            let outcome = negotiate(&session.input, &session.default, &mut a, &mut b, &config);
            let (f, r) = session.split(&outcome.assignment);
            let d = twoway_total_distance(
                &run.fwd.flows,
                &run.rev.flows,
                &run.fwd.default,
                &run.rev.default,
            );
            let n = twoway_total_distance(&run.fwd.flows, &run.rev.flows, &f, &r);
            let mut worst = f64::INFINITY;
            for side in [Side::A, Side::B] {
                let ds = crate::twoway::twoway_side_distance(
                    side,
                    &run.fwd.flows,
                    &run.rev.flows,
                    &run.fwd.default,
                    &run.rev.default,
                );
                let ns = crate::twoway::twoway_side_distance(
                    side,
                    &run.fwd.flows,
                    &run.rev.flows,
                    &f,
                    &r,
                );
                worst = worst.min(percent_gain(ds, ns));
            }
            (percent_gain(d, n), worst)
        });
        let totals: Vec<f64> = per_pair.iter().map(|&(t, _)| t).collect();
        let worst_individual = per_pair
            .iter()
            .map(|&(_, w)| w)
            .fold(f64::INFINITY, f64::min);
        rows.push((
            name.to_string(),
            crate::cdf::Cdf::new(totals).median(),
            worst_individual,
        ));
    }
    rows
}

/// Print the mode comparison.
pub fn report_modes(rows: &[(String, f64, f64)]) {
    println!("== Protocol-mode ablation (distance pairs subset) ==");
    println!(
        "  {:32} {:>12} {:>16}",
        "mode", "median gain%", "worst indiv gain%"
    );
    for (name, med, worst) in rows {
        println!("  {name:32} {med:>12.3} {worst:>16.3}");
    }
}

/// Print the preference-range sweep.
pub fn report_prange(rows: &[(i32, f64)]) {
    println!("== Preference range sweep (median total distance gain %) ==");
    for (p, g) in rows {
        println!("  P = {p:3}  median gain = {g:.3}%");
    }
}

/// Print the group sweep.
pub fn report_groups(rows: &[(usize, f64)]) {
    println!("== Group-count sweep (median total distance gain %) ==");
    for (g, v) in rows {
        println!("  groups = {g:3}  median gain = {v:.3}%");
    }
}

/// Print the model grid.
pub fn report_models(results: &ModelGridResults) {
    println!("== Alternate workload/capacity models (upstream MEL vs optimal) ==");
    crate::experiments::bandwidth::print_lp_stats(&results.lp_stats);
    println!(
        "  {:26} {:>9} {:>11} {:>10}",
        "model", "default", "negotiated", "scenarios"
    );
    for r in &results.rows {
        println!(
            "  {:26} {:>9.3} {:>11.3} {:>10}",
            r.label, r.median_default_ratio, r.median_negotiated_ratio, r.scenarios
        );
    }
}
