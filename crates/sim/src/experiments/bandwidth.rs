//! §5.2 bandwidth/overload experiments: Figures 7 and 8.
//!
//! For every eligible pair (three or more interconnections) we simulate
//! each interconnection failure in turn: capacities are assigned from the
//! pre-failure loads (gravity workload, early-exit routing), the flows
//! whose default interconnection died are re-routed by each method, and
//! the MEL (maximum excess load) of each ISP is compared against the
//! fractional global optimum.

use crate::pairdata::{ExpConfig, PairData};
use crate::parallel::par_map;
use nexit_baselines::{optimal_bandwidth, unilateral_upstream, BandwidthOptimum};
use nexit_core::{negotiate, BandwidthMapper, NexitConfig, Party, Side};
use nexit_routing::{Assignment, FlowId};
use nexit_topology::{IcxId, Universe};
use nexit_workload::{assign_capacities, link_loads, CapacityModel};

/// One simulated failure, fully prepared: reduced pair data, impacted
/// flows, capacities, post-failure default and its MELs.
pub struct FailureScenario<'u> {
    /// Pair data on the reduced (post-failure) pair.
    pub data: PairData<'u>,
    /// Flows whose pre-failure default was the failed interconnection.
    pub impacted: Vec<FlowId>,
    /// Upstream link capacities (from pre-failure loads).
    pub caps_up: Vec<f64>,
    /// Downstream link capacities.
    pub caps_down: Vec<f64>,
    /// Post-failure early-exit default MELs `(up, down)`.
    pub default_mels: (f64, f64),
}

/// Build every failure scenario for one pair (up to
/// `cfg.max_failures_per_pair`).
pub fn failure_scenarios<'u>(
    universe: &'u Universe,
    pair_idx: usize,
    cfg: &ExpConfig,
    capacity_model: &CapacityModel,
) -> Vec<FailureScenario<'u>> {
    let pair = &universe.pairs[pair_idx];
    let a = &universe.isps[pair.isp_a.index()];
    let b = &universe.isps[pair.isp_b.index()];
    let full = PairData::build(a, b, pair.clone(), cfg.workload);

    // Pre-failure loads capacitate the links.
    let pre_loads = link_loads(&full.view(), &full.paths, &full.flows, &full.default);
    let caps_up = assign_capacities(capacity_model, &pre_loads.up);
    let caps_down = assign_capacities(capacity_model, &pre_loads.down);

    let mut scenarios = Vec::new();
    let failures = pair.num_interconnections().min(cfg.max_failures_per_pair);
    for failed in 0..failures {
        let failed_icx = IcxId::new(failed);
        let (reduced, _mapping) = pair.without_interconnection(failed_icx);
        if reduced.num_interconnections() < 2 {
            continue; // no choice left to negotiate over
        }
        // A failure removes an interconnection, not internal links: the
        // reduced pair reuses the full pair's shortest-path matrices.
        let data = full.build_reduced(reduced, cfg.workload);
        // Impacted flows: pre-failure default used the failed
        // interconnection.
        let impacted: Vec<FlowId> = full
            .default
            .iter()
            .filter(|(_, choice)| *choice == failed_icx)
            .map(|(id, _)| id)
            .collect();
        if impacted.is_empty() {
            continue; // failure did not carry traffic
        }
        let loads = link_loads(&data.view(), &data.paths, &data.flows, &data.default);
        let default_mels = nexit_metrics::side_mels(&loads, &caps_up, &caps_down);
        scenarios.push(FailureScenario {
            data,
            impacted,
            caps_up: caps_up.clone(),
            caps_down: caps_down.clone(),
            default_mels,
        });
    }
    scenarios
}

impl FailureScenario<'_> {
    /// Session input over the impacted flows with post-failure early-exit
    /// defaults.
    pub fn session_input(&self) -> nexit_core::SessionInput {
        nexit_core::SessionInput {
            flow_ids: self.impacted.clone(),
            defaults: self
                .impacted
                .iter()
                .map(|&f| self.data.default.choice(f))
                .collect(),
            volumes: self
                .impacted
                .iter()
                .map(|&f| self.data.flows.flows[f.index()].volume)
                .collect(),
            num_alternatives: self.data.pair.num_interconnections(),
        }
    }

    /// MELs `(up, down)` of an assignment over the reduced pair.
    pub fn mels(&self, assignment: &Assignment) -> (f64, f64) {
        let loads = link_loads(
            &self.data.view(),
            &self.data.paths,
            &self.data.flows,
            assignment,
        );
        nexit_metrics::side_mels(&loads, &self.caps_up, &self.caps_down)
    }

    /// Negotiated routing with both ISPs on the bandwidth objective.
    pub fn negotiate_bandwidth(&self) -> Assignment {
        let input = self.session_input();
        let mut party_a = Party::honest(
            "up",
            BandwidthMapper::new(Side::A, &self.data.flows, &self.data.paths, &self.caps_up),
        );
        let mut party_b = Party::honest(
            "down",
            BandwidthMapper::new(Side::B, &self.data.flows, &self.data.paths, &self.caps_down),
        );
        negotiate(
            &input,
            &self.data.default,
            &mut party_a,
            &mut party_b,
            &NexitConfig::win_win_bandwidth(),
        )
        .assignment
    }

    /// The fractional optimum, unless the LP exceeds the variable budget.
    pub fn optimum(&self, max_lp_variables: usize) -> Option<BandwidthOptimum> {
        let vars = self.impacted.len() * self.data.pair.num_interconnections() + 1;
        if vars > max_lp_variables {
            return None;
        }
        optimal_bandwidth(
            &self.data.view(),
            &self.data.paths,
            &self.data.flows,
            &self.impacted,
            &self.data.default,
            &self.caps_up,
            &self.caps_down,
        )
        .ok()
    }
}

/// Results across all failure scenarios.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BandwidthResults {
    /// Fig. 7 upstream: default MEL / optimal MEL.
    pub up_default: Vec<f64>,
    /// Fig. 7 upstream: negotiated MEL / optimal MEL.
    pub up_negotiated: Vec<f64>,
    /// Fig. 7 downstream: default MEL / optimal MEL.
    pub down_default: Vec<f64>,
    /// Fig. 7 downstream: negotiated MEL / optimal MEL.
    pub down_negotiated: Vec<f64>,
    /// Fig. 8: downstream MEL under unilateral upstream optimization,
    /// relative to the default routing's downstream MEL.
    pub fig8_down_ratio: Vec<f64>,
    /// Scenarios whose LP exceeded the variable budget.
    pub skipped_lp: usize,
    /// Scenarios evaluated.
    pub scenarios: usize,
}

/// Run Figures 7 and 8. Pairs are swept on `cfg.threads` workers;
/// per-pair partial results are merged in pair order, so the output is
/// independent of the thread count.
pub fn run(universe: &Universe, cfg: &ExpConfig) -> BandwidthResults {
    let mut eligible = universe.eligible_pairs(3, false);
    if let Some(cap) = cfg.max_pairs {
        eligible.truncate(cap);
    }
    let capacity_model = CapacityModel::default();
    let per_pair = par_map(cfg.threads, eligible.len(), |i| {
        let mut out = BandwidthResults::default();
        run_pair_into(universe, eligible[i], cfg, &capacity_model, &mut out);
        out
    });

    let mut out = BandwidthResults::default();
    for p in per_pair {
        out.up_default.extend(p.up_default);
        out.up_negotiated.extend(p.up_negotiated);
        out.down_default.extend(p.down_default);
        out.down_negotiated.extend(p.down_negotiated);
        out.fig8_down_ratio.extend(p.fig8_down_ratio);
        out.skipped_lp += p.skipped_lp;
        out.scenarios += p.scenarios;
    }
    out
}

/// Evaluate every failure scenario of one pair into `out`.
fn run_pair_into(
    universe: &Universe,
    pair_idx: usize,
    cfg: &ExpConfig,
    capacity_model: &CapacityModel,
    out: &mut BandwidthResults,
) {
    for scenario in failure_scenarios(universe, pair_idx, cfg, capacity_model) {
        let Some(opt) = scenario.optimum(cfg.max_lp_variables) else {
            out.skipped_lp += 1;
            continue;
        };
        let opt_up = opt.side_mel(&scenario.caps_up, true);
        let opt_down = opt.side_mel(&scenario.caps_down, false);
        if opt_up < 1e-9 || opt_down < 1e-9 {
            continue; // degenerate scenario with an idle side
        }
        out.scenarios += 1;

        let (def_up, def_down) = scenario.default_mels;
        out.up_default.push(def_up / opt_up);
        out.down_default.push(def_down / opt_down);

        let negotiated = scenario.negotiate_bandwidth();
        let (neg_up, neg_down) = scenario.mels(&negotiated);
        out.up_negotiated.push(neg_up / opt_up);
        out.down_negotiated.push(neg_down / opt_down);

        // Fig. 8: unilateral upstream optimization.
        let uni = unilateral_upstream(
            &scenario.data.view(),
            &scenario.data.paths,
            &scenario.data.flows,
            &scenario.impacted,
            &scenario.data.default,
            &scenario.caps_up,
        );
        let (_, uni_down) = scenario.mels(&uni);
        if def_down > 1e-9 {
            out.fig8_down_ratio.push(uni_down / def_down);
        }
    }
}

/// Print the bandwidth experiment report.
pub fn report(results: &BandwidthResults) {
    use crate::cdf::Cdf;
    println!(
        "== Figure 7: MEL relative to optimal ({} failure scenarios, {} LP-skipped) ==",
        results.scenarios, results.skipped_lp
    );
    println!("-- upstream ISP --");
    Cdf::new(results.up_negotiated.clone()).print("negotiated");
    Cdf::new(results.up_default.clone()).print("default");
    println!("-- downstream ISP --");
    Cdf::new(results.down_negotiated.clone()).print("negotiated");
    Cdf::new(results.down_default.clone()).print("default");
    println!();
    println!("== Figure 8: downstream MEL, unilateral-upstream / default ==");
    Cdf::new(results.fig8_down_ratio.clone()).print("upstream-optimized");
}
