//! §5.2 bandwidth/overload experiments: Figures 7 and 8.
//!
//! For every eligible pair (three or more interconnections) we simulate
//! each interconnection failure in turn: capacities are assigned from the
//! pre-failure loads (gravity workload, early-exit routing), the flows
//! whose default interconnection died are re-routed by each method, and
//! the MEL (maximum excess load) of each ISP is compared against the
//! fractional global optimum.

use crate::pairdata::{ExpConfig, PairData};
use crate::parallel::par_map_with;
use nexit_baselines::{
    optimal_bandwidth, unilateral_upstream, BandwidthLp, BandwidthOptimum, OptimalBandwidthError,
};
use nexit_core::{negotiate_in, BandwidthMapper, NexitConfig, Party, Side, TableArena};
use nexit_lp::WarmStats;
use nexit_routing::{Assignment, FlowId};
use nexit_topology::{IcxId, Universe};
use nexit_workload::{assign_capacities, link_loads, CapacityModel, LinkLoads};

/// One simulated failure, fully prepared: reduced pair data, impacted
/// flows, capacities, post-failure default and its MELs.
pub struct FailureScenario<'u> {
    /// The interconnection that failed (id in the *full* pair).
    pub failed: IcxId,
    /// Pair data on the reduced (post-failure) pair.
    pub data: PairData<'u>,
    /// Flows whose pre-failure default was the failed interconnection.
    pub impacted: Vec<FlowId>,
    /// Upstream link capacities (from pre-failure loads).
    pub caps_up: Vec<f64>,
    /// Downstream link capacities.
    pub caps_down: Vec<f64>,
    /// Post-failure early-exit default MELs `(up, down)`.
    pub default_mels: (f64, f64),
}

/// Why one scenario's optimum LP was not evaluated.
#[derive(Debug, Clone)]
pub enum LpSkip {
    /// The LP exceeded the `max_lp_variables` budget.
    Size,
    /// The solver failed (iteration cap or numerical trouble).
    Solver(OptimalBandwidthError),
}

/// One pair's complete failure sweep: the pre-failure pair data and
/// capacities shared by every scenario, plus the prepared scenarios.
/// [`PairFailureSweep::lp_session`] derives the incremental
/// [`BandwidthLp`] that solves all the scenarios' optima warm.
pub struct PairFailureSweep<'u> {
    /// Pre-failure pair data (the full interconnection set).
    pub full: PairData<'u>,
    /// Upstream capacities assigned from the pre-failure loads.
    pub caps_up: Vec<f64>,
    /// Downstream capacities.
    pub caps_down: Vec<f64>,
    /// Pre-failure loads (every flow on its early-exit default).
    pub pre_loads: LinkLoads,
    /// How many leading interconnections the sweep fails.
    pub candidate_failures: usize,
    /// The prepared scenarios (skipping empty and non-negotiable ones).
    pub scenarios: Vec<FailureScenario<'u>>,
}

impl<'u> PairFailureSweep<'u> {
    /// Prepare one pair's failure sweep (up to
    /// `cfg.max_failures_per_pair` scenarios).
    pub fn build(
        universe: &'u Universe,
        pair_idx: usize,
        cfg: &ExpConfig,
        capacity_model: &CapacityModel,
    ) -> Self {
        let pair = &universe.pairs[pair_idx];
        let a = &universe.isps[pair.isp_a.index()];
        let b = &universe.isps[pair.isp_b.index()];
        let full = PairData::build(a, b, pair.clone(), cfg.workload);

        // Pre-failure loads capacitate the links.
        let pre_loads = link_loads(&full.view(), &full.paths, &full.flows, &full.default);
        let caps_up = assign_capacities(capacity_model, &pre_loads.up);
        let caps_down = assign_capacities(capacity_model, &pre_loads.down);

        let mut scenarios = Vec::new();
        let failures = pair.num_interconnections().min(cfg.max_failures_per_pair);
        for failed in 0..failures {
            let failed_icx = IcxId::new(failed);
            let (reduced, _mapping) = full.pair.without_interconnection(failed_icx);
            if reduced.num_interconnections() < 2 {
                continue; // no choice left to negotiate over
            }
            // A failure removes an interconnection, not internal links:
            // the reduced pair reuses the full pair's shortest-path
            // matrices.
            let data = full.build_reduced(reduced, cfg.workload);
            // Impacted flows: pre-failure default used the failed
            // interconnection.
            let impacted: Vec<FlowId> = full
                .default
                .iter()
                .filter(|(_, choice)| *choice == failed_icx)
                .map(|(id, _)| id)
                .collect();
            if impacted.is_empty() {
                continue; // failure did not carry traffic
            }
            let loads = link_loads(&data.view(), &data.paths, &data.flows, &data.default);
            let default_mels = nexit_metrics::side_mels(&loads, &caps_up, &caps_down);
            scenarios.push(FailureScenario {
                failed: failed_icx,
                data,
                impacted,
                caps_up: caps_up.clone(),
                caps_down: caps_down.clone(),
                default_mels,
            });
        }
        Self {
            full,
            caps_up,
            caps_down,
            pre_loads,
            candidate_failures: failures,
            scenarios,
        }
    }

    /// The incremental LP session over this sweep's scenarios: each
    /// scenario's constraint skeleton is built once (identical to the
    /// standalone [`optimal_bandwidth`] program, so first solves are
    /// bit-identical to the cold path) and re-solves warm-start from the
    /// retained basis. Scenarios whose LP exceeds `max_lp_variables` are
    /// left unregistered; [`FailureScenario::optimum_in`] reports those
    /// as [`LpSkip::Size`].
    pub fn lp_session(&self, max_lp_variables: usize) -> BandwidthLp<'_> {
        let mut session = BandwidthLp::new();
        for scenario in &self.scenarios {
            let vars = scenario.impacted.len() * scenario.data.pair.num_interconnections() + 1;
            if vars > max_lp_variables {
                continue;
            }
            let view = scenario.data.view();
            session.add_scenario(
                scenario.failed,
                &view,
                &scenario.data.paths,
                &scenario.data.flows,
                &scenario.impacted,
                &scenario.data.default,
                &scenario.caps_up,
                &scenario.caps_down,
            );
        }
        session
    }
}

/// Build every failure scenario for one pair (up to
/// `cfg.max_failures_per_pair`). Convenience wrapper around
/// [`PairFailureSweep::build`] for callers that do not need the shared
/// pre-failure state.
pub fn failure_scenarios<'u>(
    universe: &'u Universe,
    pair_idx: usize,
    cfg: &ExpConfig,
    capacity_model: &CapacityModel,
) -> Vec<FailureScenario<'u>> {
    PairFailureSweep::build(universe, pair_idx, cfg, capacity_model).scenarios
}

impl FailureScenario<'_> {
    /// This scenario's optimum through a sweep's LP session: warm when
    /// registered, [`LpSkip::Size`] when the session's size gate left it
    /// out.
    pub fn optimum_in(&self, session: &mut BandwidthLp<'_>) -> Result<BandwidthOptimum, LpSkip> {
        if !session.has_scenario(self.failed) {
            return Err(LpSkip::Size);
        }
        session.solve_failure(self.failed).map_err(LpSkip::Solver)
    }

    /// Session input over the impacted flows with post-failure early-exit
    /// defaults.
    pub fn session_input(&self) -> nexit_core::SessionInput {
        nexit_core::SessionInput {
            flow_ids: self.impacted.clone(),
            defaults: self
                .impacted
                .iter()
                .map(|&f| self.data.default.choice(f))
                .collect(),
            volumes: self
                .impacted
                .iter()
                .map(|&f| self.data.flows.flows[f.index()].volume)
                .collect(),
            num_alternatives: self.data.pair.num_interconnections(),
        }
    }

    /// MELs `(up, down)` of an assignment over the reduced pair.
    pub fn mels(&self, assignment: &Assignment) -> (f64, f64) {
        self.mels_with_caps(assignment, &self.caps_up, &self.caps_down)
    }

    /// [`FailureScenario::mels`] against explicit capacity vectors — the
    /// capacity-model grid evaluates one scenario under several models
    /// without rebuilding it.
    pub fn mels_with_caps(
        &self,
        assignment: &Assignment,
        caps_up: &[f64],
        caps_down: &[f64],
    ) -> (f64, f64) {
        let loads = link_loads(
            &self.data.view(),
            &self.data.paths,
            &self.data.flows,
            assignment,
        );
        nexit_metrics::side_mels(&loads, caps_up, caps_down)
    }

    /// Negotiated routing with both ISPs on the bandwidth objective.
    /// Session buffers are drawn from (and retired to) `arena`, so a
    /// sweep threading one arena through its scenarios allocates the
    /// backing tables once.
    pub fn negotiate_bandwidth_in(&self, arena: &mut TableArena) -> Assignment {
        self.negotiate_bandwidth_with(arena, &self.caps_up, &self.caps_down)
    }

    /// [`FailureScenario::negotiate_bandwidth_in`] against explicit
    /// capacity vectors (the capacity-model grid's per-cell capacities).
    pub fn negotiate_bandwidth_with(
        &self,
        arena: &mut TableArena,
        caps_up: &[f64],
        caps_down: &[f64],
    ) -> Assignment {
        let input = self.session_input();
        let mut party_a = Party::honest(
            "up",
            BandwidthMapper::new(Side::A, &self.data.flows, &self.data.paths, caps_up),
        );
        let mut party_b = Party::honest(
            "down",
            BandwidthMapper::new(Side::B, &self.data.flows, &self.data.paths, caps_down),
        );
        negotiate_in(
            arena,
            &input,
            &self.data.default,
            &mut party_a,
            &mut party_b,
            &NexitConfig::win_win_bandwidth(),
        )
        .assignment
    }

    /// [`FailureScenario::negotiate_bandwidth_in`] with a throwaway
    /// arena.
    pub fn negotiate_bandwidth(&self) -> Assignment {
        self.negotiate_bandwidth_in(&mut TableArena::new())
    }

    /// The fractional optimum from a standalone cold-start build of this
    /// scenario's LP, gated on the per-scenario variable budget. The
    /// sweeps prefer the warm [`BandwidthLp`] session (see
    /// [`PairFailureSweep::optimum`]) and use this as the fallback when
    /// the session skeleton is over budget.
    pub fn optimum(&self, max_lp_variables: usize) -> Result<BandwidthOptimum, LpSkip> {
        let vars = self.impacted.len() * self.data.pair.num_interconnections() + 1;
        if vars > max_lp_variables {
            return Err(LpSkip::Size);
        }
        optimal_bandwidth(
            &self.data.view(),
            &self.data.paths,
            &self.data.flows,
            &self.impacted,
            &self.data.default,
            &self.caps_up,
            &self.caps_down,
        )
        .map_err(LpSkip::Solver)
    }
}

/// Results across all failure scenarios.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BandwidthResults {
    /// Fig. 7 upstream: default MEL / optimal MEL.
    pub up_default: Vec<f64>,
    /// Fig. 7 upstream: negotiated MEL / optimal MEL.
    pub up_negotiated: Vec<f64>,
    /// Fig. 7 downstream: default MEL / optimal MEL.
    pub down_default: Vec<f64>,
    /// Fig. 7 downstream: negotiated MEL / optimal MEL.
    pub down_negotiated: Vec<f64>,
    /// Fig. 8: downstream MEL under unilateral upstream optimization,
    /// relative to the default routing's downstream MEL.
    pub fig8_down_ratio: Vec<f64>,
    /// Scenarios skipped because their LP exceeded the
    /// `max_lp_variables` budget.
    pub skipped_lp_size: usize,
    /// Scenarios skipped because the LP solver failed (iteration cap or
    /// numerical trouble) — distinct from size skips since PR 4.
    pub failed_lp: usize,
    /// Scenarios evaluated.
    pub scenarios: usize,
    /// How the pair-scoped LP sessions resolved their solves
    /// (cold / warm rhs re-entry / coefficient refresh, plus fallbacks)
    /// — the sweep-level record of how often the warm path held.
    pub lp_stats: WarmStats,
}

/// Run Figures 7 and 8. Pairs are swept on `cfg.threads` workers (each
/// threading one [`TableArena`] through its pairs); per-pair partial
/// results are merged in pair order, so the output is independent of
/// the thread count.
pub fn run(universe: &Universe, cfg: &ExpConfig) -> BandwidthResults {
    let mut eligible = universe.eligible_pairs(3, false);
    if let Some(cap) = cfg.max_pairs {
        eligible.truncate(cap);
    }
    let capacity_model = CapacityModel::default();
    let per_pair = par_map_with(cfg.threads, eligible.len(), TableArena::new, |arena, i| {
        let mut out = BandwidthResults::default();
        run_pair_into(universe, eligible[i], cfg, &capacity_model, arena, &mut out);
        out
    });

    let mut out = BandwidthResults::default();
    for p in per_pair {
        out.up_default.extend(p.up_default);
        out.up_negotiated.extend(p.up_negotiated);
        out.down_default.extend(p.down_default);
        out.down_negotiated.extend(p.down_negotiated);
        out.fig8_down_ratio.extend(p.fig8_down_ratio);
        out.skipped_lp_size += p.skipped_lp_size;
        out.failed_lp += p.failed_lp;
        out.scenarios += p.scenarios;
        out.lp_stats.absorb(p.lp_stats);
    }
    out
}

/// Evaluate every failure scenario of one pair into `out`. The LP
/// session is scoped to the pair (warm-start state never crosses pair
/// boundaries, keeping results independent of work scheduling); the
/// negotiation arena is worker-scoped (buffer reuse is value-neutral).
fn run_pair_into(
    universe: &Universe,
    pair_idx: usize,
    cfg: &ExpConfig,
    capacity_model: &CapacityModel,
    arena: &mut TableArena,
    out: &mut BandwidthResults,
) {
    let sweep = PairFailureSweep::build(universe, pair_idx, cfg, capacity_model);
    let mut session = sweep.lp_session(cfg.max_lp_variables);
    for scenario in &sweep.scenarios {
        let opt = match scenario.optimum_in(&mut session) {
            Ok(opt) => opt,
            Err(LpSkip::Size) => {
                out.skipped_lp_size += 1;
                continue;
            }
            Err(LpSkip::Solver(_)) => {
                out.failed_lp += 1;
                continue;
            }
        };
        let opt_up = opt.side_mel(&scenario.caps_up, true);
        let opt_down = opt.side_mel(&scenario.caps_down, false);
        if opt_up < 1e-9 || opt_down < 1e-9 {
            continue; // degenerate scenario with an idle side
        }
        out.scenarios += 1;

        let (def_up, def_down) = scenario.default_mels;
        out.up_default.push(def_up / opt_up);
        out.down_default.push(def_down / opt_down);

        let negotiated = scenario.negotiate_bandwidth_in(arena);
        let (neg_up, neg_down) = scenario.mels(&negotiated);
        out.up_negotiated.push(neg_up / opt_up);
        out.down_negotiated.push(neg_down / opt_down);

        // Fig. 8: unilateral upstream optimization.
        let uni = unilateral_upstream(
            &scenario.data.view(),
            &scenario.data.paths,
            &scenario.data.flows,
            &scenario.impacted,
            &scenario.data.default,
            &scenario.caps_up,
        );
        let (_, uni_down) = scenario.mels(&uni);
        if def_down > 1e-9 {
            out.fig8_down_ratio.push(uni_down / def_down);
        }
    }
    out.lp_stats.absorb(session.warm_stats());
}

/// Results of the background-growth sweep: per growth factor, the
/// distribution of `t(factor) / t(1.0)` across failure scenarios.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GrowthResults {
    /// The growth factors evaluated (background residual load scale).
    pub factors: Vec<f64>,
    /// `degradation[i]` — one sample per scenario of how much factor
    /// `factors[i]` inflates the optimal post-failure MEL.
    pub degradation: Vec<Vec<f64>>,
    /// Scenarios evaluated.
    pub scenarios: usize,
    /// Scaled re-solves that failed (iteration cap / numerical trouble);
    /// their samples are missing from `degradation`.
    pub failed_resolves: usize,
    /// How the ladder's LP sessions resolved their solves — at paper
    /// scale almost everything after each scenario's first solve should
    /// land in `warm_solves`.
    pub lp_stats: WarmStats,
}

/// What-if sweep over background traffic growth: for every failure
/// scenario, re-solve the fractional optimum with the non-negotiated
/// residual load scaled by each factor. Each scenario's skeleton is
/// built once and every re-solve after the first is an rhs-only patch,
/// so the whole ladder runs on warm simplex starts — this sweep is the
/// experiment-level consumer of [`BandwidthLp::solve_failure_scaled`].
pub fn run_growth(universe: &Universe, cfg: &ExpConfig, factors: &[f64]) -> GrowthResults {
    let mut eligible = universe.eligible_pairs(3, false);
    if let Some(cap) = cfg.max_pairs {
        eligible.truncate(cap);
    }
    let capacity_model = CapacityModel::default();
    let per_pair = par_map_with(
        cfg.threads,
        eligible.len(),
        || (),
        |(), i| {
            let mut out = GrowthResults {
                factors: factors.to_vec(),
                degradation: vec![Vec::new(); factors.len()],
                ..GrowthResults::default()
            };
            let sweep = PairFailureSweep::build(universe, eligible[i], cfg, &capacity_model);
            let mut session = sweep.lp_session(cfg.max_lp_variables);
            for scenario in &sweep.scenarios {
                let Ok(base) = scenario.optimum_in(&mut session) else {
                    continue;
                };
                if base.t < 1e-9 {
                    continue;
                }
                out.scenarios += 1;
                for (fi, &factor) in factors.iter().enumerate() {
                    match session.solve_failure_scaled(scenario.failed, factor) {
                        Ok(scaled) => out.degradation[fi].push(scaled.t / base.t),
                        Err(_) => out.failed_resolves += 1,
                    }
                }
            }
            out.lp_stats.absorb(session.warm_stats());
            out
        },
    );
    let mut out = GrowthResults {
        factors: factors.to_vec(),
        degradation: vec![Vec::new(); factors.len()],
        ..GrowthResults::default()
    };
    for p in per_pair {
        for (fi, samples) in p.degradation.into_iter().enumerate() {
            out.degradation[fi].extend(samples);
        }
        out.scenarios += p.scenarios;
        out.failed_resolves += p.failed_resolves;
        out.lp_stats.absorb(p.lp_stats);
    }
    out
}

/// Print one sweep's LP warm/cold/refresh counters — how often the warm
/// path actually held across the sweep's re-solves — plus the engine's
/// factorization/pricing telemetry, so a slow-looking sweep is
/// diagnosable from its output (basis churn vs fill-in vs anti-cycling
/// stalls).
pub fn print_lp_stats(stats: &WarmStats) {
    println!(
        "   LP solves: {} cold, {} warm (rhs re-entry, {} fell back), \
         {} refreshed (coefficient patch, {} fell back)",
        stats.cold_solves,
        stats.warm_solves,
        stats.warm_fallbacks,
        stats.refresh_solves,
        stats.refresh_fallbacks
    );
    println!(
        "   LP engine: {} refactorizations, {} eta pivots \
         (longest chain {}), peak LU fill {} nnz, {} Bland fallbacks",
        stats.refactorizations,
        stats.eta_pivots,
        stats.max_eta_chain,
        stats.lu_fill_nnz,
        stats.pricing_fallbacks
    );
}

/// Print the growth-sweep report.
pub fn report_growth(results: &GrowthResults) {
    use crate::cdf::Cdf;
    println!(
        "== Background growth: optimal MEL degradation ({} scenarios, {} failed re-solves) ==",
        results.scenarios, results.failed_resolves
    );
    print_lp_stats(&results.lp_stats);
    for (factor, samples) in results.factors.iter().zip(&results.degradation) {
        Cdf::new(samples.clone()).print(&format!("x{factor:.2} background"));
    }
}

/// Print the bandwidth experiment report.
pub fn report(results: &BandwidthResults) {
    use crate::cdf::Cdf;
    println!(
        "== Figure 7: MEL relative to optimal ({} failure scenarios, {} size-skipped, {} solver-failed) ==",
        results.scenarios, results.skipped_lp_size, results.failed_lp
    );
    print_lp_stats(&results.lp_stats);
    println!("-- upstream ISP --");
    Cdf::new(results.up_negotiated.clone()).print("negotiated");
    Cdf::new(results.up_default.clone()).print("default");
    println!("-- downstream ISP --");
    Cdf::new(results.down_negotiated.clone()).print("negotiated");
    Cdf::new(results.down_default.clone()).print("default");
    println!();
    println!("== Figure 8: downstream MEL, unilateral-upstream / default ==");
    Cdf::new(results.fig8_down_ratio.clone()).print("upstream-optimized");
}
