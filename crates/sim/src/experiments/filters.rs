//! Figure 5: the flow-Pareto and flow-both-better strategies.

use crate::cdf::StreamingCdf;
use crate::experiments::distance::build_pair_run;
use crate::pairdata::ExpConfig;
use crate::parallel::par_map;
use crate::twoway::twoway_total_distance;
use nexit_baselines::flow_filters::{flow_both_better, flow_pareto, OppositeFlows};
use nexit_metrics::percent_gain;
use nexit_topology::Universe;

/// Results: per-pair total % gains for both strategies, held as
/// bounded-memory sketches (these series scale with the flow-filter
/// sweep size, and the reports only read quantiles).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FilterResults {
    /// flow-Pareto total distance gain per pair.
    pub pareto: StreamingCdf,
    /// flow-both-better total distance gain per pair.
    pub both_better: StreamingCdf,
}

/// Run Figure 5 over the distance-eligible pairs. Pairs are swept on
/// `cfg.threads` workers and merged in pair order; the filter seed is
/// derived from the pair's position, so the output is thread-count
/// independent.
pub fn run(universe: &Universe, cfg: &ExpConfig) -> FilterResults {
    let mut eligible = universe.eligible_pairs(2, true);
    if let Some(cap) = cfg.max_pairs {
        eligible.truncate(cap);
    }
    let per_pair = par_map(cfg.threads, eligible.len(), |i| {
        let run = build_pair_run(universe, eligible[i]);
        let input = OppositeFlows {
            fwd: &run.fwd.flows,
            rev: &run.rev.flows,
            fwd_default: &run.fwd.default,
            rev_default: &run.rev.default,
            num_pops_a: run.fwd.a.num_pops(),
            num_pops_b: run.fwd.b.num_pops(),
        };
        let d_total = twoway_total_distance(
            &run.fwd.flows,
            &run.rev.flows,
            &run.fwd.default,
            &run.rev.default,
        );
        let seed = cfg.seed.wrapping_add(i as u64);
        let (pf, pr) = flow_pareto(&input, seed);
        let pareto = percent_gain(
            d_total,
            twoway_total_distance(&run.fwd.flows, &run.rev.flows, &pf, &pr),
        );
        let (bf, br) = flow_both_better(&input, seed);
        let both_better = percent_gain(
            d_total,
            twoway_total_distance(&run.fwd.flows, &run.rev.flows, &bf, &br),
        );
        (pareto, both_better)
    });
    let mut out = FilterResults::default();
    // Streamed in pair order, so the sketches are independent of the
    // worker count.
    for (pareto, both_better) in per_pair {
        out.pareto.push(pareto);
        out.both_better.push(both_better);
    }
    out
}

/// Print the Figure 5 report.
pub fn report(results: &FilterResults) {
    println!("== Figure 5: gain of flow-level filter strategies (% reduction) ==");
    results.both_better.print("flow-both-better");
    results.pareto.print("flow-Pareto");
}
