//! Figure 9: negotiation with different optimization criteria.
//!
//! Same failure scenarios as §5.2, but the upstream ISP optimizes
//! bandwidth (overload) while the downstream optimizes distance. The left
//! graph tracks the upstream's MEL relative to the (bandwidth) optimum;
//! the right graph the downstream's distance reduction over the impacted
//! flows relative to default routing.

use crate::experiments::bandwidth::PairFailureSweep;
use crate::pairdata::ExpConfig;
use crate::parallel::par_map_with;
use nexit_core::{
    negotiate_in, BandwidthMapper, DistanceMapper, NexitConfig, Party, Side, TableArena,
};
use nexit_metrics::percent_gain;
use nexit_routing::Assignment;
use nexit_topology::Universe;
use nexit_workload::CapacityModel;

/// Results for Figure 9.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiverseResults {
    /// Left graph: upstream MEL / optimal MEL, negotiated.
    pub up_negotiated: Vec<f64>,
    /// Left graph: upstream MEL / optimal MEL, default.
    pub up_default: Vec<f64>,
    /// Right graph: downstream distance % gain over default (impacted
    /// flows).
    pub down_distance_gain: Vec<f64>,
    /// Scenarios evaluated.
    pub scenarios: usize,
}

/// Downstream distance over the impacted flows only.
fn downstream_impacted_km(
    scenario: &crate::experiments::bandwidth::FailureScenario<'_>,
    assignment: &Assignment,
) -> f64 {
    scenario
        .impacted
        .iter()
        .map(|&f| {
            let m = &scenario.data.flows.metrics[f.index()];
            let v = scenario.data.flows.flows[f.index()].volume;
            v * m.down_km[assignment.choice(f).index()]
        })
        .sum()
}

/// Run Figure 9. Pairs are swept on `cfg.threads` workers (each with a
/// worker-local [`TableArena`]) and merged in pair order (thread-count
/// independent output).
pub fn run(universe: &Universe, cfg: &ExpConfig) -> DiverseResults {
    let mut eligible = universe.eligible_pairs(3, false);
    if let Some(cap) = cfg.max_pairs {
        eligible.truncate(cap);
    }
    let capacity_model = CapacityModel::default();
    let per_pair = par_map_with(cfg.threads, eligible.len(), TableArena::new, |arena, i| {
        run_pair(universe, eligible[i], cfg, &capacity_model, arena)
    });
    let mut out = DiverseResults::default();
    for p in per_pair {
        out.up_negotiated.extend(p.up_negotiated);
        out.up_default.extend(p.up_default);
        out.down_distance_gain.extend(p.down_distance_gain);
        out.scenarios += p.scenarios;
    }
    out
}

/// Evaluate every failure scenario of one Figure-9 pair, drawing the
/// scenario optima from the pair's warm LP session and the negotiation
/// buffers from the worker's arena.
fn run_pair(
    universe: &Universe,
    idx: usize,
    cfg: &ExpConfig,
    capacity_model: &CapacityModel,
    arena: &mut TableArena,
) -> DiverseResults {
    let mut out = DiverseResults::default();
    let sweep = PairFailureSweep::build(universe, idx, cfg, capacity_model);
    let mut session = sweep.lp_session(cfg.max_lp_variables);
    for scenario in &sweep.scenarios {
        let Ok(opt) = scenario.optimum_in(&mut session) else {
            continue;
        };
        let opt_up = opt.side_mel(&scenario.caps_up, true);
        if opt_up < 1e-9 {
            continue;
        }
        out.scenarios += 1;

        let input = scenario.session_input();
        let mut party_a = Party::honest(
            "up-bandwidth",
            BandwidthMapper::new(
                Side::A,
                &scenario.data.flows,
                &scenario.data.paths,
                &scenario.caps_up,
            ),
        );
        let mut party_b = Party::honest(
            "down-distance",
            DistanceMapper::new(Side::B, &scenario.data.flows),
        );
        let outcome = negotiate_in(
            arena,
            &input,
            &scenario.data.default,
            &mut party_a,
            &mut party_b,
            &NexitConfig::win_win_bandwidth(),
        );

        let (def_up, _) = scenario.default_mels;
        let (neg_up, _) = scenario.mels(&outcome.assignment);
        out.up_default.push(def_up / opt_up);
        out.up_negotiated.push(neg_up / opt_up);

        let d_km = downstream_impacted_km(scenario, &scenario.data.default);
        let n_km = downstream_impacted_km(scenario, &outcome.assignment);
        out.down_distance_gain.push(percent_gain(d_km, n_km));
    }
    out
}

/// Print the Figure 9 report.
pub fn report(results: &DiverseResults) {
    use crate::cdf::Cdf;
    println!(
        "== Figure 9: diverse criteria ({} scenarios) ==",
        results.scenarios
    );
    println!("-- upstream ISP (bandwidth objective): MEL relative to optimal --");
    Cdf::new(results.up_negotiated.clone()).print("negotiated");
    Cdf::new(results.up_default.clone()).print("default");
    println!("-- downstream ISP (distance objective): % gain over default --");
    Cdf::new(results.down_distance_gain.clone()).print("negotiated");
}
