//! §5.4 cheating experiments: Figures 10 and 11.
//!
//! The cheater uses the paper's inflate-best strategy with perfect
//! knowledge of the other ISP's preference list. Figure 10 repeats the
//! distance experiment with ISP-B cheating; Figure 11 repeats the
//! bandwidth experiment with the upstream ISP cheating.

use crate::cdf::StreamingCdf;
use crate::experiments::bandwidth::PairFailureSweep;
use crate::experiments::distance::build_pair_run;
use crate::pairdata::ExpConfig;
use crate::parallel::{par_map, par_map_with};
use crate::twoway::{twoway_side_distance, twoway_total_distance, TwoWayDistanceMapper};
use nexit_core::{
    negotiate, negotiate_in, BandwidthMapper, DisclosurePolicy, NexitConfig, Party, Side,
    TableArena,
};
use nexit_lp::WarmStats;
use nexit_metrics::percent_gain;
use nexit_topology::Universe;
use nexit_workload::CapacityModel;

/// Figure 10 results (distance, ISP-B cheats). The per-ISP gain series
/// (Fig. 10b) stream through bounded-memory sketches — they are the
/// flow-scaled half of this experiment's output, and the report only
/// reads quantiles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheatDistanceResults {
    /// Total gain per pair, both truthful.
    pub total_truthful: Vec<f64>,
    /// Total gain per pair, one cheater.
    pub total_cheater: Vec<f64>,
    /// Individual gains with both truthful (two samples per pair).
    pub individual_truthful: StreamingCdf,
    /// The cheater's individual gain per pair.
    pub cheater_gain: StreamingCdf,
    /// The truthful ISP's individual gain per pair (cheater run).
    pub truthful_gain: StreamingCdf,
}

/// Run Figure 10. Pairs are swept on `cfg.threads` workers and merged
/// in pair order (thread-count independent output).
pub fn run_distance(universe: &Universe, cfg: &ExpConfig) -> CheatDistanceResults {
    let mut eligible = universe.eligible_pairs(2, true);
    if let Some(cap) = cfg.max_pairs {
        eligible.truncate(cap);
    }
    let config = NexitConfig::win_win();
    // Per pair: (total_truthful, (indiv_t_a, indiv_t_b), total_cheater,
    // truthful_gain, cheater_gain).
    let per_pair = par_map(cfg.threads, eligible.len(), |i| {
        run_distance_pair(universe, eligible[i], &config)
    });
    let mut out = CheatDistanceResults::default();
    // Streamed in pair order, so the sketches are independent of the
    // worker count.
    for (t_total, (t_a, t_b), c_total, c_a, c_b) in per_pair {
        out.total_truthful.push(t_total);
        out.individual_truthful.push(t_a);
        out.individual_truthful.push(t_b);
        out.total_cheater.push(c_total);
        out.truthful_gain.push(c_a);
        out.cheater_gain.push(c_b);
    }
    out
}

/// Evaluate one Figure-10 pair: truthful run, then ISP-B cheating.
fn run_distance_pair(
    universe: &Universe,
    idx: usize,
    config: &NexitConfig,
) -> (f64, (f64, f64), f64, f64, f64) {
    let run = build_pair_run(universe, idx);
    let session = &run.session;
    let mapper =
        |side| TwoWayDistanceMapper::new(side, &run.fwd.flows, &run.rev.flows, session.n_fwd);

    // Evaluate an outcome's gains in kilometres.
    let evaluate = |assignment: &nexit_routing::Assignment| -> (f64, f64, f64) {
        let (f, r) = session.split(assignment);
        let d_total = twoway_total_distance(
            &run.fwd.flows,
            &run.rev.flows,
            &run.fwd.default,
            &run.rev.default,
        );
        let total = percent_gain(
            d_total,
            twoway_total_distance(&run.fwd.flows, &run.rev.flows, &f, &r),
        );
        let side = |s| {
            let d = twoway_side_distance(
                s,
                &run.fwd.flows,
                &run.rev.flows,
                &run.fwd.default,
                &run.rev.default,
            );
            let n = twoway_side_distance(s, &run.fwd.flows, &run.rev.flows, &f, &r);
            percent_gain(d, n)
        };
        (total, side(Side::A), side(Side::B))
    };

    // Both truthful.
    let mut a = Party::honest("A", mapper(Side::A));
    let mut b = Party::honest("B", mapper(Side::B));
    let truthful = negotiate(&session.input, &session.default, &mut a, &mut b, config);
    let (t_total, t_a, t_b) = evaluate(&truthful.assignment);

    // ISP-B cheats (inflate-best with perfect knowledge).
    let mut a = Party::honest("A", mapper(Side::A));
    let mut b = Party::cheating("B", mapper(Side::B), DisclosurePolicy::InflateBest);
    let cheated = negotiate(&session.input, &session.default, &mut a, &mut b, config);
    let (c_total, c_a, c_b) = evaluate(&cheated.assignment);

    (t_total, (t_a, t_b), c_total, c_a, c_b)
}

/// Figure 11 results (bandwidth, upstream cheats). MELs relative to the
/// optimal, per failure scenario.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheatBandwidthResults {
    /// Upstream MEL ratio, both truthful.
    pub up_truthful: Vec<f64>,
    /// Upstream MEL ratio, upstream cheating.
    pub up_cheater: Vec<f64>,
    /// Upstream MEL ratio, default routing.
    pub up_default: Vec<f64>,
    /// Downstream MEL ratio, both truthful.
    pub down_truthful: Vec<f64>,
    /// Downstream MEL ratio, upstream cheating.
    pub down_cheater: Vec<f64>,
    /// Downstream MEL ratio, default routing.
    pub down_default: Vec<f64>,
    /// How the pair-scoped LP sessions resolved their solves.
    pub lp_stats: WarmStats,
}

/// Run Figure 11. Pairs are swept on `cfg.threads` workers and merged
/// in pair order (thread-count independent output).
pub fn run_bandwidth(universe: &Universe, cfg: &ExpConfig) -> CheatBandwidthResults {
    let mut eligible = universe.eligible_pairs(3, false);
    if let Some(cap) = cfg.max_pairs {
        eligible.truncate(cap);
    }
    let capacity_model = CapacityModel::default();
    let config = NexitConfig::win_win_bandwidth();
    let per_pair = par_map_with(cfg.threads, eligible.len(), TableArena::new, |arena, i| {
        run_bandwidth_pair(universe, eligible[i], cfg, &capacity_model, &config, arena)
    });
    let mut out = CheatBandwidthResults::default();
    for p in per_pair {
        out.up_truthful.extend(p.up_truthful);
        out.up_cheater.extend(p.up_cheater);
        out.up_default.extend(p.up_default);
        out.down_truthful.extend(p.down_truthful);
        out.down_cheater.extend(p.down_cheater);
        out.down_default.extend(p.down_default);
        out.lp_stats.absorb(p.lp_stats);
    }
    out
}

/// Evaluate every failure scenario of one Figure-11 pair, with the
/// pair-scoped warm LP session and the worker's negotiation arena.
fn run_bandwidth_pair(
    universe: &Universe,
    idx: usize,
    cfg: &ExpConfig,
    capacity_model: &CapacityModel,
    config: &NexitConfig,
    arena: &mut TableArena,
) -> CheatBandwidthResults {
    let mut out = CheatBandwidthResults::default();
    let sweep = PairFailureSweep::build(universe, idx, cfg, capacity_model);
    let mut session = sweep.lp_session(cfg.max_lp_variables);
    for scenario in &sweep.scenarios {
        let Ok(opt) = scenario.optimum_in(&mut session) else {
            continue;
        };
        let opt_up = opt.side_mel(&scenario.caps_up, true);
        let opt_down = opt.side_mel(&scenario.caps_down, false);
        if opt_up < 1e-9 || opt_down < 1e-9 {
            continue;
        }
        let input = scenario.session_input();
        let up_mapper = || {
            BandwidthMapper::new(
                Side::A,
                &scenario.data.flows,
                &scenario.data.paths,
                &scenario.caps_up,
            )
        };
        let down_mapper = || {
            BandwidthMapper::new(
                Side::B,
                &scenario.data.flows,
                &scenario.data.paths,
                &scenario.caps_down,
            )
        };

        let mut a = Party::honest("up", up_mapper());
        let mut b = Party::honest("down", down_mapper());
        let truthful = negotiate_in(
            arena,
            &input,
            &scenario.data.default,
            &mut a,
            &mut b,
            config,
        );
        let (tu, td) = scenario.mels(&truthful.assignment);

        let mut a = Party::cheating("up", up_mapper(), DisclosurePolicy::InflateBest);
        let mut b = Party::honest("down", down_mapper());
        let cheated = negotiate_in(
            arena,
            &input,
            &scenario.data.default,
            &mut a,
            &mut b,
            config,
        );
        let (cu, cd) = scenario.mels(&cheated.assignment);

        let (du, dd) = scenario.default_mels;
        out.up_truthful.push(tu / opt_up);
        out.up_cheater.push(cu / opt_up);
        out.up_default.push(du / opt_up);
        out.down_truthful.push(td / opt_down);
        out.down_cheater.push(cd / opt_down);
        out.down_default.push(dd / opt_down);
    }
    out.lp_stats.absorb(session.warm_stats());
    out
}

/// Print the Figure 10 report.
pub fn report_distance(results: &CheatDistanceResults) {
    use crate::cdf::Cdf;
    println!("== Figure 10a: total distance gain, truthful vs one cheater ==");
    Cdf::new(results.total_truthful.clone()).print("both truthful");
    Cdf::new(results.total_cheater.clone()).print("one cheater");
    println!();
    println!("== Figure 10b: individual gains ==");
    results.individual_truthful.print("both truthful");
    results.cheater_gain.print("cheater");
    results.truthful_gain.print("truthful");
}

/// Print the Figure 11 report.
pub fn report_bandwidth(results: &CheatBandwidthResults) {
    use crate::cdf::Cdf;
    println!("== Figure 11: bandwidth cheating (upstream cheats), MEL vs optimal ==");
    crate::experiments::bandwidth::print_lp_stats(&results.lp_stats);
    println!("-- upstream ISP --");
    Cdf::new(results.up_truthful.clone()).print("both truthful");
    Cdf::new(results.up_cheater.clone()).print("one cheater");
    Cdf::new(results.up_default.clone()).print("default");
    println!("-- downstream ISP --");
    Cdf::new(results.down_truthful.clone()).print("both truthful");
    Cdf::new(results.down_cheater.clone()).print("one cheater");
    Cdf::new(results.down_default.clone()).print("default");
}
