//! Broker throughput + equivalence experiment (`experiments broker`).
//!
//! Serves a synthetic batch of negotiation pairs through
//! [`nexit_broker::Broker`] and verifies every outcome byte-identical to
//! the in-process engine ([`nexit_core::negotiate`]) run sequentially on
//! the same sessions, then reports sessions/sec. The synthetic workload
//! (seeded random gain tables) is shared with the `broker/*` benchmark
//! rows so measured numbers and CI gates describe the same sessions.

use nexit_broker::{Broker, BrokerConfig, PairOutcome, SessionSpec};
use nexit_core::{negotiate, GainTable, NexitConfig, Party, PreferenceMapper, SessionInput};
use nexit_routing::{Assignment, FlowId};
use nexit_topology::IcxId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// A mapper reading from a fixed, pre-seeded gain table. Rebuilding it
/// from the same seed reproduces the identical table, which is how the
/// sequential engine reference gets byte-identical inputs.
#[derive(Clone)]
pub struct SeededTableMapper {
    gains: GainTable,
}

impl SeededTableMapper {
    /// Deterministic random gains for `flows` flows × `alts`
    /// alternatives; alternative 0 (the default) always gains zero.
    pub fn new(flows: usize, alts: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gains = GainTable::new(flows, alts);
        for f in 0..flows {
            let row = gains.row_mut(f);
            for cell in row.iter_mut() {
                *cell = rng.gen_range(-50.0..50.0);
            }
            row[0] = 0.0;
        }
        Self { gains }
    }
}

impl PreferenceMapper for SeededTableMapper {
    fn gains(&mut self, _input: &SessionInput, _current: &Assignment, out: &mut GainTable) {
        out.copy_from(&self.gains);
    }
}

fn session_input(flows: usize, alts: usize) -> SessionInput {
    SessionInput {
        flow_ids: (0..flows).map(FlowId::new).collect(),
        defaults: vec![IcxId(0); flows],
        volumes: vec![1.0; flows],
        num_alternatives: alts,
    }
}

/// The synthetic broker workload: `pairs` independent sessions of
/// `flows` flows × `alts` alternatives, mappers seeded from `seed`.
/// Shared by `experiments broker` and the `broker/*` bench rows.
pub fn synthetic_specs(
    pairs: usize,
    flows: usize,
    alts: usize,
    seed: u64,
) -> Vec<SessionSpec<'static>> {
    (0..pairs)
        .map(|p| {
            SessionSpec::honest(
                session_input(flows, alts),
                Assignment::uniform(flows, IcxId(0)),
                SeededTableMapper::new(flows, alts, seed ^ (2 * p as u64)),
                SeededTableMapper::new(flows, alts, seed ^ (2 * p as u64 + 1)),
                NexitConfig::win_win(),
            )
        })
        .collect()
}

/// One broker run's measurements.
#[derive(Debug, Clone)]
pub struct BrokerReport {
    /// Sessions submitted.
    pub pairs: usize,
    /// Worker threads requested (0 = all cores).
    pub workers: usize,
    /// Sessions that completed with outcomes.
    pub completed: usize,
    /// Sessions whose outcome differed from the sequential engine.
    pub mismatches: usize,
    /// Wall-clock time of the broker run (excludes the engine replay).
    pub elapsed: Duration,
    /// `completed / elapsed` (the headline number).
    pub sessions_per_sec: f64,
    /// Wire frames moved.
    pub frames: u64,
    /// Wire bytes moved.
    pub bytes: u64,
    /// Session-ticks spent parked on backpressure.
    pub parked: u64,
}

/// Re-run one pair's session through the in-process engine and compare.
fn matches_engine(pair: usize, flows: usize, alts: usize, seed: u64, out: &PairOutcome) -> bool {
    let mut a = Party::honest(
        "A",
        SeededTableMapper::new(flows, alts, seed ^ (2 * pair as u64)),
    );
    let mut b = Party::honest(
        "B",
        SeededTableMapper::new(flows, alts, seed ^ (2 * pair as u64 + 1)),
    );
    let reference = negotiate(
        &session_input(flows, alts),
        &Assignment::uniform(flows, IcxId(0)),
        &mut a,
        &mut b,
        &NexitConfig::win_win(),
    );
    reference.assignment.choices() == out.a.assignment.choices()
        && out.a.assignment == out.b.assignment
        && reference.gain_a == out.a.my_gain
        && reference.gain_b == out.b.my_gain
        && reference.termination == out.a.termination
        && reference.termination == out.b.termination
        && reference.reassignments == out.a.reassignments
}

/// Session shape used by `experiments broker` and the bench rows.
pub const FLOWS: usize = 16;
/// Alternatives per flow for the synthetic workload.
pub const ALTS: usize = 4;

/// Serve `pairs` synthetic sessions on `workers` threads, verify every
/// outcome against the sequential engine, and report throughput.
pub fn run(pairs: usize, workers: usize, seed: u64) -> BrokerReport {
    let specs = synthetic_specs(pairs, FLOWS, ALTS, seed);
    let broker = Broker::new(BrokerConfig::with_workers(workers));
    let start = Instant::now();
    let run = broker.run_pairs(specs);
    let elapsed = start.elapsed();

    let mut mismatches = 0usize;
    for (p, result) in run.results.iter().enumerate() {
        match result.outcome() {
            Some(out) if matches_engine(p, FLOWS, ALTS, seed, out) => {}
            _ => mismatches += 1,
        }
    }
    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    BrokerReport {
        pairs,
        workers,
        completed: run.stats.completed,
        mismatches,
        elapsed,
        sessions_per_sec: run.stats.completed as f64 / secs,
        frames: run.stats.frames,
        bytes: run.stats.bytes,
        parked: run.stats.parked,
    }
}

/// Print one report row.
pub fn report(r: &BrokerReport) {
    println!(
        "broker: {} pairs on {} worker(s): {} completed, {} mismatches vs engine, \
         {:.1} sessions/sec ({:.3}s; {} frames, {} bytes, {} parked ticks)",
        r.pairs,
        if r.workers == 0 {
            nexit_core::parallel::resolve_threads(0)
        } else {
            r.workers
        },
        r.completed,
        r.mismatches,
        r.sessions_per_sec,
        r.elapsed.as_secs_f64(),
        r.frames,
        r.bytes,
        r.parked,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_batch_matches_engine_exactly() {
        let r = run(64, 1, 7);
        assert_eq!(r.completed, 64);
        assert_eq!(r.mismatches, 0);
    }

    #[test]
    fn synthetic_specs_are_reproducible() {
        // Same seed twice → same broker outcomes (specs are pure).
        let broker = Broker::new(BrokerConfig::with_workers(1));
        let a = broker.run_pairs(synthetic_specs(8, FLOWS, ALTS, 3));
        let b = broker.run_pairs(synthetic_specs(8, FLOWS, ALTS, 3));
        for (x, y) in a.results.iter().zip(b.results.iter()) {
            let (x, y) = (x.outcome().unwrap(), y.outcome().unwrap());
            assert_eq!(x.a.assignment, y.a.assignment);
            assert_eq!(x.a.my_gain, y.a.my_gain);
        }
    }
}
