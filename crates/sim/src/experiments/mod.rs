//! Experiment drivers, one module per paper figure group.

pub mod ablation;
pub mod bandwidth;
pub mod broker;
pub mod cheating;
pub mod distance;
pub mod diverse;
pub mod faults;
pub mod filters;
