//! §5.1 distance experiments: Figures 4a, 4b, 6 and the flow-fraction
//! claim.
//!
//! Both traffic directions of each eligible pair (two or more
//! interconnections, no mesh ISPs) are negotiated as one combined session
//! — the paper keeps "all the traffic on the negotiating table". Flows are
//! unweighted (the §5.1 metric is the plain sum of path lengths), so the
//! identical-weights workload model is forced here regardless of the
//! experiment configuration.

use crate::cdf::StreamingCdf;
use crate::pairdata::{ExpConfig, PairData};
use crate::parallel::par_map;
use crate::twoway::{
    twoway_side_distance, twoway_total_distance, TwoWayDistanceMapper, TwoWaySession,
};
use nexit_baselines::optimal_distance;
use nexit_core::{negotiate, NexitConfig, Party, Side};
use nexit_metrics::percent_gain;
use nexit_topology::Universe;
use nexit_workload::WorkloadModel;

/// Results of the distance experiment across all pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistanceResults {
    /// Fig. 4a: per-pair % reduction of total distance, negotiated.
    pub total_negotiated: Vec<f64>,
    /// Fig. 4a: per-pair % reduction of total distance, optimal.
    pub total_optimal: Vec<f64>,
    /// Fig. 4b: per-ISP % reduction (two samples per pair), negotiated.
    pub individual_negotiated: Vec<f64>,
    /// Fig. 4b: per-ISP % reduction, optimal.
    pub individual_optimal: Vec<f64>,
    /// Fig. 6: per-flow % gain across all pairs, negotiated. Held as a
    /// bounded-memory sketch: this series is ~pops² samples per pair and
    /// the only one that scales with flows rather than pairs.
    pub flow_negotiated: StreamingCdf,
    /// Fig. 6: per-flow % gain, optimal (sketched likewise).
    pub flow_optimal: StreamingCdf,
    /// §5.1 claim: per pair, the fraction of all flows that must be
    /// non-default routed to capture 90% of the negotiated gain.
    pub fraction_for_90pct: Vec<f64>,
    /// Late-exit (consistently honored MEDs, Fig. 1b): per-pair total %
    /// "gain" — typically near zero, since it merely mirrors early-exit.
    pub total_late_exit: Vec<f64>,
    /// Number of pairs evaluated.
    pub pairs: usize,
}

/// Per-pair intermediate, exposed for the cheating experiment which needs
/// the same setup with different parties.
pub struct DistancePairRun<'u> {
    /// Forward-direction data (A upstream).
    pub fwd: PairData<'u>,
    /// Reverse-direction data (B upstream), built on the mirrored pair.
    pub rev: PairData<'u>,
    /// The combined session.
    pub session: TwoWaySession,
}

/// Build the combined two-direction run for one pair index. The reverse
/// direction reuses the forward shortest-path matrices (mirrored pair,
/// same topologies).
pub fn build_pair_run(universe: &Universe, pair_idx: usize) -> DistancePairRun<'_> {
    let pair = &universe.pairs[pair_idx];
    let a = &universe.isps[pair.isp_a.index()];
    let b = &universe.isps[pair.isp_b.index()];
    let fwd = PairData::build(a, b, pair.clone(), WorkloadModel::Identical);
    let rev = fwd.build_mirrored(WorkloadModel::Identical);
    let session = TwoWaySession::build(&fwd, &rev);
    DistancePairRun { fwd, rev, session }
}

/// One pair's contribution to [`DistanceResults`], in the exact order
/// the serial loop would push it.
struct PairResult {
    total_negotiated: f64,
    total_optimal: f64,
    total_late_exit: f64,
    /// `[A, B]` per-ISP gains.
    individual_negotiated: [f64; 2],
    individual_optimal: [f64; 2],
    /// Per-pair sketches, not vectors: even while every pair's result is
    /// alive between the parallel sweep and the merge, peak memory stays
    /// bounded by pairs x sketch capacity, not total flows.
    flow_negotiated: StreamingCdf,
    flow_optimal: StreamingCdf,
    fraction_for_90pct: f64,
}

/// Run the full distance experiment. Pairs are swept on
/// `cfg.threads` workers; results are merged in pair order, so the
/// output is independent of the thread count.
pub fn run(universe: &Universe, cfg: &ExpConfig) -> DistanceResults {
    let mut eligible = universe.eligible_pairs(2, true);
    if let Some(cap) = cfg.max_pairs {
        eligible.truncate(cap);
    }
    let per_pair = par_map(cfg.threads, eligible.len(), |i| {
        run_pair(universe, eligible[i])
    });

    let mut out = DistanceResults {
        pairs: eligible.len(),
        ..DistanceResults::default()
    };
    for p in per_pair {
        out.total_negotiated.push(p.total_negotiated);
        out.total_optimal.push(p.total_optimal);
        out.total_late_exit.push(p.total_late_exit);
        out.individual_negotiated.extend(p.individual_negotiated);
        out.individual_optimal.extend(p.individual_optimal);
        // Per-flow series merge into the sketches in pair order, so the
        // result is independent of the worker count.
        out.flow_negotiated.merge(&p.flow_negotiated);
        out.flow_optimal.merge(&p.flow_optimal);
        out.fraction_for_90pct.push(p.fraction_for_90pct);
    }
    out
}

/// Evaluate one pair (negotiated, optimal and late-exit baselines).
fn run_pair(universe: &Universe, pair_idx: usize) -> PairResult {
    let run = build_pair_run(universe, pair_idx);
    let session = &run.session;

    // Negotiated routing.
    let mut party_a = Party::honest(
        "ISP-A",
        TwoWayDistanceMapper::new(Side::A, &run.fwd.flows, &run.rev.flows, session.n_fwd),
    );
    let mut party_b = Party::honest(
        "ISP-B",
        TwoWayDistanceMapper::new(Side::B, &run.fwd.flows, &run.rev.flows, session.n_fwd),
    );
    let outcome = negotiate(
        &session.input,
        &session.default,
        &mut party_a,
        &mut party_b,
        &NexitConfig::win_win(),
    );
    let (neg_fwd, neg_rev) = session.split(&outcome.assignment);

    // Optimal routing (per-flow total-distance argmin in each
    // direction).
    let opt_fwd = optimal_distance(&run.fwd.flows);
    let opt_rev = optimal_distance(&run.rev.flows);

    // Totals (Fig. 4a).
    let d_total = twoway_total_distance(
        &run.fwd.flows,
        &run.rev.flows,
        &run.fwd.default,
        &run.rev.default,
    );
    let n_total = twoway_total_distance(&run.fwd.flows, &run.rev.flows, &neg_fwd, &neg_rev);
    let o_total = twoway_total_distance(&run.fwd.flows, &run.rev.flows, &opt_fwd, &opt_rev);

    // Late-exit baseline (Fig. 1b): every flow enters at the
    // interconnection closest to its destination.
    let late_fwd = nexit_routing::Assignment::from_choices(
        run.fwd
            .flows
            .flows
            .iter()
            .map(|f| nexit_routing::late_exit(&run.fwd.view(), &run.fwd.sp_down, f.dst))
            .collect(),
    );
    let late_rev = nexit_routing::Assignment::from_choices(
        run.rev
            .flows
            .flows
            .iter()
            .map(|f| nexit_routing::late_exit(&run.rev.view(), &run.rev.sp_down, f.dst))
            .collect(),
    );
    let l_total = twoway_total_distance(&run.fwd.flows, &run.rev.flows, &late_fwd, &late_rev);

    // Individual ISP gains (Fig. 4b).
    let side_gains = |side| {
        let d = twoway_side_distance(
            side,
            &run.fwd.flows,
            &run.rev.flows,
            &run.fwd.default,
            &run.rev.default,
        );
        let n = twoway_side_distance(side, &run.fwd.flows, &run.rev.flows, &neg_fwd, &neg_rev);
        let o = twoway_side_distance(side, &run.fwd.flows, &run.rev.flows, &opt_fwd, &opt_rev);
        (percent_gain(d, n), percent_gain(d, o))
    };
    let (ind_neg_a, ind_opt_a) = side_gains(Side::A);
    let (ind_neg_b, ind_opt_b) = side_gains(Side::B);

    // Flow-level gains (Fig. 6) and the 90%-of-gain fraction.
    let mut flow_negotiated = StreamingCdf::default();
    let mut flow_optimal = StreamingCdf::default();
    let mut per_flow_saving: Vec<f64> = Vec::new();
    let mut collect = |flows: &nexit_routing::PairFlows,
                       default: &nexit_routing::Assignment,
                       neg: &nexit_routing::Assignment,
                       opt: &nexit_routing::Assignment| {
        for (id, _, m) in flows.iter() {
            let d = m.total_km(default.choice(id));
            flow_negotiated.push(percent_gain(d, m.total_km(neg.choice(id))));
            flow_optimal.push(percent_gain(d, m.total_km(opt.choice(id))));
            per_flow_saving.push(d - m.total_km(neg.choice(id)));
        }
    };
    collect(&run.fwd.flows, &run.fwd.default, &neg_fwd, &opt_fwd);
    collect(&run.rev.flows, &run.rev.default, &neg_rev, &opt_rev);

    PairResult {
        total_negotiated: percent_gain(d_total, n_total),
        total_optimal: percent_gain(d_total, o_total),
        total_late_exit: percent_gain(d_total, l_total),
        individual_negotiated: [ind_neg_a, ind_neg_b],
        individual_optimal: [ind_opt_a, ind_opt_b],
        flow_negotiated,
        flow_optimal,
        fraction_for_90pct: fraction_for_gain_share(&per_flow_saving, 0.9),
    }
}

/// The fraction of all flows (sorted by descending saving) needed to
/// capture `share` of the total positive saving. Returns 0 when there is
/// no gain at all.
pub fn fraction_for_gain_share(per_flow_saving: &[f64], share: f64) -> f64 {
    let total: f64 = per_flow_saving.iter().filter(|&&s| s > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut savings: Vec<f64> = per_flow_saving
        .iter()
        .copied()
        .filter(|&s| s > 0.0)
        .collect();
    savings.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let mut acc = 0.0;
    for (i, s) in savings.iter().enumerate() {
        acc += s;
        if acc >= share * total {
            return (i + 1) as f64 / per_flow_saving.len() as f64;
        }
    }
    1.0
}

/// Print the distance experiment report (Figures 4a, 4b, 6).
pub fn report(results: &DistanceResults) {
    use crate::cdf::Cdf;
    println!("== Figure 4a: total distance gain over default (% reduction) ==");
    Cdf::new(results.total_negotiated.clone()).print("negotiated");
    Cdf::new(results.total_optimal.clone()).print("optimal");
    Cdf::new(results.total_late_exit.clone()).print("late-exit (MEDs, Fig. 1b)");
    println!();
    println!("== Figure 4b: individual ISP distance gain (% reduction) ==");
    Cdf::new(results.individual_negotiated.clone()).print("negotiated");
    Cdf::new(results.individual_optimal.clone()).print("optimal");
    println!();
    println!("== Figure 6: flow-level gain (% reduction, all flows, all pairs) ==");
    results.flow_negotiated.print("negotiated");
    results.flow_optimal.print("optimal");
    println!();
    let frac = Cdf::new(results.fraction_for_90pct.clone());
    println!(
        "== §5.1 claim: median fraction of flows for 90% of gain = {:.1}% ==",
        100.0 * frac.median()
    );
}
