//! Destination-based negotiation (the paper's footnote 2).
//!
//! The paper evaluates source-destination routing (each flow picked
//! independently) but notes Nexit "can be extended to destination-based
//! routing" — the granularity plain BGP offers, where every flow headed
//! to the same destination PoP must use the same interconnection — and
//! that "empirical evaluation with destination-based routing yields
//! results similar" to the headline numbers.
//!
//! The extension is purely a re-aggregation: one negotiated *unit* per
//! destination PoP, whose volume is the sum of its member flows and
//! whose metric gain for an alternative is the sum of member-flow gains.
//! The engine is unchanged; the unit's decision fans back out to every
//! member flow.

use crate::pairdata::PairData;
use crate::parallel::par_flows;
use nexit_core::{GainTable, PreferenceMapper, SessionInput, Side};
use nexit_routing::{Assignment, FlowId, PairFlows};
use nexit_topology::IcxId;

/// A destination-granularity view of one directed flow set.
pub struct DestinationSession {
    /// Engine input: one entry per destination PoP (local index =
    /// destination PoP index).
    pub input: SessionInput,
    /// Member flows of each destination, in destination order.
    pub members: Vec<Vec<FlowId>>,
}

impl DestinationSession {
    /// Aggregate a directed pair's flows by destination PoP. The unit's
    /// default is the *volume-majority* default of its members (BGP
    /// would impose one; the heaviest-volume choice loses the least when
    /// imposed on everyone).
    pub fn build(data: &PairData<'_>) -> Self {
        let num_dsts = data.b.num_pops();
        let k = data.pair.num_interconnections();
        let mut members: Vec<Vec<FlowId>> = vec![Vec::new(); num_dsts];
        for (id, flow, _) in data.flows.iter() {
            members[flow.dst.index()].push(id);
        }
        let mut defaults = Vec::with_capacity(num_dsts);
        let mut volumes = Vec::with_capacity(num_dsts);
        for flows_of_dst in &members {
            let mut vol_by_alt = vec![0.0; k];
            let mut total = 0.0;
            for &f in flows_of_dst {
                let v = data.flows.flows[f.index()].volume;
                vol_by_alt[data.default.choice(f).index()] += v;
                total += v;
            }
            let majority = vol_by_alt
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite volumes"))
                .map(|(i, _)| i)
                .unwrap_or(0);
            defaults.push(IcxId::new(majority));
            volumes.push(total);
        }
        Self {
            input: SessionInput {
                flow_ids: (0..num_dsts).map(FlowId::new).collect(),
                defaults,
                volumes,
                num_alternatives: k,
            },
            members,
        }
    }

    /// The per-destination default assignment *fanned out* to flows (what
    /// destination-based BGP routing would actually do — this differs
    /// from the per-flow early-exit default!).
    pub fn fanned_default(&self, num_flows: usize) -> Assignment {
        let mut asg = Assignment::uniform(num_flows, IcxId::new(0));
        for (dst, flows) in self.members.iter().enumerate() {
            for &f in flows {
                asg.set(f, self.input.defaults[dst]);
            }
        }
        asg
    }

    /// Fan a destination-level outcome back out to per-flow choices.
    pub fn fan_out(&self, dst_assignment: &Assignment, num_flows: usize) -> Assignment {
        let mut asg = Assignment::uniform(num_flows, IcxId::new(0));
        for (dst, flows) in self.members.iter().enumerate() {
            let choice = dst_assignment.choice(FlowId::new(dst));
            for &f in flows {
                asg.set(f, choice);
            }
        }
        asg
    }
}

/// Distance mapper at destination granularity: the gain of moving a
/// destination to an alternative is the summed own-side gain of all its
/// member flows.
///
/// This is the mapper where flow-level parallelism pays: one
/// destination-granularity session covers *every* destination PoP of the
/// downstream ISP at once, and each unit's row sums over all its member
/// flows — O(pops × flows-per-pop × alternatives) of work that is
/// independent per unit. [`DestinationDistanceMapper::with_threads`] fans
/// the row fills across [`par_flows`] workers writing disjoint slices of
/// the one flat table; the output is byte-identical to the serial fill.
pub struct DestinationDistanceMapper<'a> {
    side: Side,
    flows: &'a PairFlows,
    members: Vec<Vec<FlowId>>,
    threads: usize,
}

impl<'a> DestinationDistanceMapper<'a> {
    /// Mapper over a destination session's member table (serial fill).
    pub fn new(side: Side, flows: &'a PairFlows, session: &DestinationSession) -> Self {
        Self {
            side,
            flows,
            members: session.members.clone(),
            threads: 1,
        }
    }

    /// Fan the per-unit gain computation across `threads` workers
    /// (0 = every available core). Results are byte-identical to the
    /// serial mapper for any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

impl PreferenceMapper for DestinationDistanceMapper<'_> {
    fn gains(&mut self, input: &SessionInput, _current: &Assignment, out: &mut GainTable) {
        let side = self.side;
        let flows = self.flows;
        let members = &self.members;
        let flow_ids = &input.flow_ids;
        let defaults = &input.defaults;
        par_flows(self.threads, out, |i, row| {
            let dst_unit = flow_ids[i];
            let default = defaults[i];
            let member_flows = &members[dst_unit.index()];
            for (alt, cell) in row.iter_mut().enumerate() {
                *cell = member_flows
                    .iter()
                    .map(|&f| {
                        let m = &flows.metrics[f.index()];
                        let v = flows.flows[f.index()].volume;
                        let km = |a: usize| match side {
                            Side::A => m.up_km[a],
                            Side::B => m.down_km[a],
                        };
                        v * (km(default.index()) - km(alt))
                    })
                    .sum();
            }
        });
    }
}

/// Results of the destination-granularity experiment (footnote 2).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DestinationResults {
    /// Per pair: % total-distance reduction of destination-granularity
    /// negotiation over the destination-based (BGP-granularity) default.
    pub pair_gain: Vec<f64>,
    /// Per pair: % reduction achieved by per-flow negotiation on the
    /// same pair (the finer granularity the paper evaluates headline).
    pub flow_gain: Vec<f64>,
    /// Pairs evaluated.
    pub pairs: usize,
}

/// Run destination-granularity negotiation across all eligible pairs.
///
/// Unlike the per-pair sweeps, parallelism here is applied *inside* each
/// session: every destination unit's gain row sums over all member
/// flows, and `cfg.threads` workers fill disjoint row ranges of the one
/// flat gain table ([`par_flows`]; 0 = all cores). Results are
/// byte-identical for any thread count.
pub fn run(
    universe: &nexit_topology::Universe,
    cfg: &crate::pairdata::ExpConfig,
) -> DestinationResults {
    use nexit_core::{negotiate, DistanceMapper, NexitConfig, Party};
    use nexit_routing::assignment::total_distance_km;

    let mut eligible = universe.eligible_pairs(2, true);
    if let Some(cap) = cfg.max_pairs {
        eligible.truncate(cap);
    }
    let mut out = DestinationResults {
        pairs: eligible.len(),
        ..DestinationResults::default()
    };
    for &idx in &eligible {
        let pair = &universe.pairs[idx];
        let data = PairData::build(
            &universe.isps[pair.isp_a.index()],
            &universe.isps[pair.isp_b.index()],
            pair.clone(),
            cfg.workload,
        );
        let session = DestinationSession::build(&data);

        // Destination-granularity negotiation, flow-parallel mappers.
        let mut a = Party::honest(
            "A",
            DestinationDistanceMapper::new(Side::A, &data.flows, &session)
                .with_threads(cfg.threads),
        );
        let mut b = Party::honest(
            "B",
            DestinationDistanceMapper::new(Side::B, &data.flows, &session)
                .with_threads(cfg.threads),
        );
        let dst_default = Assignment::from_choices(session.input.defaults.clone());
        let outcome = negotiate(
            &session.input,
            &dst_default,
            &mut a,
            &mut b,
            &NexitConfig::win_win(),
        );
        let base = session.fanned_default(data.flows.len());
        let negotiated = session.fan_out(&outcome.assignment, data.flows.len());
        out.pair_gain.push(nexit_metrics::percent_gain(
            total_distance_km(&data.flows, &base),
            total_distance_km(&data.flows, &negotiated),
        ));

        // Per-flow negotiation on the same pair for the granularity gap.
        let flow_input = SessionInput {
            flow_ids: (0..data.flows.len()).map(FlowId::new).collect(),
            defaults: data.default.choices().to_vec(),
            volumes: data.flows.flows.iter().map(|f| f.volume).collect(),
            num_alternatives: data.pair.num_interconnections(),
        };
        let mut a = Party::honest("A", DistanceMapper::new(Side::A, &data.flows));
        let mut b = Party::honest("B", DistanceMapper::new(Side::B, &data.flows));
        let flow_out = negotiate(
            &flow_input,
            &data.default,
            &mut a,
            &mut b,
            &NexitConfig::win_win(),
        );
        out.flow_gain.push(nexit_metrics::percent_gain(
            total_distance_km(&data.flows, &base),
            total_distance_km(&data.flows, &flow_out.assignment),
        ));
    }
    out
}

/// Print the destination-granularity report.
pub fn report(results: &DestinationResults) {
    use crate::cdf::Cdf;
    println!(
        "== Footnote 2: destination-granularity negotiation ({} pairs) ==",
        results.pairs
    );
    Cdf::new(results.pair_gain.clone()).print("destination-negotiated (% vs BGP default)");
    Cdf::new(results.flow_gain.clone()).print("per-flow negotiated (same baseline)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairdata::PairData;
    use nexit_core::{negotiate, NexitConfig, Party};
    use nexit_routing::assignment::total_distance_km;
    use nexit_topology::{GeneratorConfig, TopologyGenerator};
    use nexit_workload::WorkloadModel;

    fn setup() -> nexit_topology::Universe {
        TopologyGenerator::new(GeneratorConfig {
            num_isps: 12,
            num_mesh_isps: 0,
            seed: 21,
            ..GeneratorConfig::default()
        })
        .generate()
    }

    #[test]
    fn aggregation_covers_all_flows_once() {
        let u = setup();
        let idx = u.eligible_pairs(2, true)[0];
        let pair = &u.pairs[idx];
        let data = PairData::build(
            &u.isps[pair.isp_a.index()],
            &u.isps[pair.isp_b.index()],
            pair.clone(),
            WorkloadModel::Gravity,
        );
        let session = DestinationSession::build(&data);
        let total_members: usize = session.members.iter().map(Vec::len).sum();
        assert_eq!(total_members, data.flows.len());
        assert_eq!(session.input.len(), data.b.num_pops());
        // Unit volumes conserve total traffic.
        let unit_total: f64 = session.input.volumes.iter().sum();
        assert!((unit_total - data.flows.total_volume()).abs() < 1e-9);
    }

    #[test]
    fn fan_out_is_consistent_with_unit_choices() {
        let u = setup();
        let idx = u.eligible_pairs(2, true)[0];
        let pair = &u.pairs[idx];
        let data = PairData::build(
            &u.isps[pair.isp_a.index()],
            &u.isps[pair.isp_b.index()],
            pair.clone(),
            WorkloadModel::Identical,
        );
        let session = DestinationSession::build(&data);
        let dst_default = Assignment::from_choices(session.input.defaults.clone());
        let fanned = session.fan_out(&dst_default, data.flows.len());
        for (dst, flows) in session.members.iter().enumerate() {
            for &f in flows {
                assert_eq!(fanned.choice(f), session.input.defaults[dst]);
            }
        }
        assert_eq!(fanned, session.fanned_default(data.flows.len()));
    }

    #[test]
    fn threaded_gain_fanout_is_byte_identical() {
        // The satellite guarantee: fanning the destination mapper's
        // per-unit fills across worker threads changes wall-clock time,
        // never a single bit of the table — and therefore never a
        // negotiation decision.
        let u = setup();
        let idx = u.eligible_pairs(2, true)[0];
        let pair = &u.pairs[idx];
        let data = PairData::build(
            &u.isps[pair.isp_a.index()],
            &u.isps[pair.isp_b.index()],
            pair.clone(),
            WorkloadModel::Gravity,
        );
        let session = DestinationSession::build(&data);
        let current = Assignment::from_choices(session.input.defaults.clone());
        let k = session.input.num_alternatives;
        let fill = |threads: usize| {
            let mut mapper = DestinationDistanceMapper::new(Side::A, &data.flows, &session)
                .with_threads(threads);
            let mut out = GainTable::new(session.input.len(), k);
            mapper.gains(&session.input, &current, &mut out);
            out
        };
        let serial = fill(1);
        for threads in [2, 4] {
            let threaded = fill(threads);
            assert!(
                serial
                    .values()
                    .iter()
                    .zip(threaded.values())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{threads} threads diverged from the serial fill"
            );
        }
        // And the gains are not trivially zero (the comparison means
        // something).
        assert!(serial.values().iter().any(|&g| g != 0.0));
    }

    #[test]
    fn destination_negotiation_yields_similar_results() {
        // The footnote-2 claim: destination-granularity negotiation gains
        // are similar to (and necessarily no better than) per-flow gains.
        let u = setup();
        let mut flow_total = 0.0;
        let mut dst_total = 0.0;
        let mut base_total = 0.0;
        for &idx in u.eligible_pairs(2, true).iter().take(4) {
            let pair = &u.pairs[idx];
            let data = PairData::build(
                &u.isps[pair.isp_a.index()],
                &u.isps[pair.isp_b.index()],
                pair.clone(),
                WorkloadModel::Identical,
            );
            let session = DestinationSession::build(&data);
            // Destination-based *default*: BGP-granularity baseline.
            let base = session.fanned_default(data.flows.len());
            let mut a = Party::honest(
                "A",
                DestinationDistanceMapper::new(Side::A, &data.flows, &session),
            );
            let mut b = Party::honest(
                "B",
                DestinationDistanceMapper::new(Side::B, &data.flows, &session),
            );
            let dst_default = Assignment::from_choices(session.input.defaults.clone());
            let out = negotiate(
                &session.input,
                &dst_default,
                &mut a,
                &mut b,
                &NexitConfig::win_win(),
            );
            let negotiated = session.fan_out(&out.assignment, data.flows.len());

            // Per-flow negotiation on the same pair, same baseline.
            use nexit_core::DistanceMapper;
            let flow_input = SessionInput {
                flow_ids: (0..data.flows.len()).map(FlowId::new).collect(),
                defaults: data.default.choices().to_vec(),
                volumes: data.flows.flows.iter().map(|f| f.volume).collect(),
                num_alternatives: data.pair.num_interconnections(),
            };
            let mut a = Party::honest("A", DistanceMapper::new(Side::A, &data.flows));
            let mut b = Party::honest("B", DistanceMapper::new(Side::B, &data.flows));
            let flow_out = negotiate(
                &flow_input,
                &data.default,
                &mut a,
                &mut b,
                &NexitConfig::win_win(),
            );

            base_total += total_distance_km(&data.flows, &base);
            dst_total += total_distance_km(&data.flows, &negotiated);
            flow_total += total_distance_km(&data.flows, &flow_out.assignment);
        }
        // Destination-based negotiation improves on its own baseline...
        assert!(dst_total <= base_total + 1e-6);
        // ...and per-flow routing (finer granularity) is at least as good
        // as destination-based overall.
        assert!(flow_total <= dst_total * 1.05 + 1e-6);
    }
}
