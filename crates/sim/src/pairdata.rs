//! Per-pair precomputation shared by every experiment.

use nexit_routing::{Assignment, PairFlows, ShortestPaths};
use nexit_topology::{IspPair, IspTopology, PairView};
use nexit_workload::{volume_fn, PathTable, WorkloadModel};
use std::sync::Arc;

/// Global experiment knobs.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Cap on eligible pairs per experiment (`None` = all). Used to keep
    /// smoke runs fast; the full runs use `None`.
    pub max_pairs: Option<usize>,
    /// Cap on simulated interconnection failures per pair.
    pub max_failures_per_pair: usize,
    /// Skip bandwidth-optimum LPs larger than this many variables
    /// (impacted flows × alternatives); skipped scenarios are counted and
    /// reported.
    pub max_lp_variables: usize,
    /// Seed for the strategies that randomize (flow filters).
    pub seed: u64,
    /// Workload model for bandwidth experiments.
    pub workload: WorkloadModel,
    /// Worker threads for the per-pair sweeps: 0 = one per available
    /// core, 1 = serial, N = exactly N. Results are byte-identical for
    /// every setting (see [`crate::parallel`]).
    pub threads: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            max_pairs: None,
            max_failures_per_pair: 5,
            max_lp_variables: 6_000,
            seed: 1,
            workload: WorkloadModel::Gravity,
            threads: 1,
        }
    }
}

impl ExpConfig {
    /// A fast configuration for tests and smoke runs. Sweeps run on all
    /// available cores (output is thread-count independent).
    pub fn smoke() -> Self {
        Self {
            max_pairs: Some(12),
            max_failures_per_pair: 2,
            max_lp_variables: 2_000,
            threads: 0,
            ..Self::default()
        }
    }
}

/// Everything one directed experiment needs about a pair: the (owned)
/// pair record, shortest paths, flows, path tables and the early-exit
/// default. Topologies are borrowed from the universe; the pair record is
/// owned so that mirrored and failure-reduced pairs work identically.
///
/// Shortest-path matrices depend only on an ISP's internal topology —
/// not on the pair's interconnections or direction — so they are held
/// behind [`Arc`] and shared: the mirrored reverse-direction run and
/// every failure-reduced variant of a pair reuse the forward matrices
/// instead of recomputing all-pairs Dijkstra.
pub struct PairData<'u> {
    /// The upstream (A-side) topology.
    pub a: &'u IspTopology,
    /// The downstream (B-side) topology.
    pub b: &'u IspTopology,
    /// The pair record (owned; may be a mirrored or reduced variant).
    pub pair: IspPair,
    /// Shortest paths in the upstream ISP (shared; see the type docs).
    pub sp_up: Arc<ShortestPaths>,
    /// Shortest paths in the downstream ISP (shared; see the type docs).
    pub sp_down: Arc<ShortestPaths>,
    /// The directed flow set.
    pub flows: PairFlows,
    /// Per-(flow, alternative) link paths.
    pub paths: PathTable,
    /// Early-exit default assignment.
    pub default: Assignment,
}

impl<'u> PairData<'u> {
    /// Build for a directed pair with the given workload model,
    /// computing both shortest-path matrices from scratch.
    pub fn build(
        a: &'u IspTopology,
        b: &'u IspTopology,
        pair: IspPair,
        workload: WorkloadModel,
    ) -> Self {
        let sp_up = Arc::new(ShortestPaths::compute(a));
        let sp_down = Arc::new(ShortestPaths::compute(b));
        Self::build_with_paths(a, b, pair, workload, sp_up, sp_down)
    }

    /// Build reusing precomputed shortest-path matrices (which must be
    /// `ShortestPaths::compute(a)` / `compute(b)` — they depend only on
    /// the topologies, so any pair variant between the same ISPs
    /// qualifies).
    pub fn build_with_paths(
        a: &'u IspTopology,
        b: &'u IspTopology,
        pair: IspPair,
        workload: WorkloadModel,
        sp_up: Arc<ShortestPaths>,
        sp_down: Arc<ShortestPaths>,
    ) -> Self {
        let (flows, paths, default) = {
            let view = PairView::new(a, b, &pair);
            let vol = volume_fn(workload, a, b);
            let flows = PairFlows::build(&view, &sp_up, &sp_down, vol);
            let paths = PathTable::build(&view, &sp_up, &sp_down, &flows);
            let default = Assignment::early_exit(&view, &sp_up, &flows);
            (flows, paths, default)
        };
        Self {
            a,
            b,
            pair,
            sp_up,
            sp_down,
            flows,
            paths,
            default,
        }
    }

    /// Build the reverse-direction dataset (B upstream) on the mirrored
    /// pair, reusing this dataset's shortest-path matrices with the
    /// roles swapped.
    pub fn build_mirrored(&self, workload: WorkloadModel) -> PairData<'u> {
        PairData::build_with_paths(
            self.b,
            self.a,
            self.mirrored_pair(),
            workload,
            self.sp_down.clone(),
            self.sp_up.clone(),
        )
    }

    /// Build the dataset for a reduced (post-failure) variant of this
    /// data's pair, reusing the shortest-path matrices.
    pub fn build_reduced(&self, reduced: IspPair, workload: WorkloadModel) -> PairData<'u> {
        debug_assert_eq!(reduced.isp_a, self.pair.isp_a);
        debug_assert_eq!(reduced.isp_b, self.pair.isp_b);
        PairData::build_with_paths(
            self.a,
            self.b,
            reduced,
            workload,
            self.sp_up.clone(),
            self.sp_down.clone(),
        )
    }

    /// The directed view over this data's pair.
    pub fn view(&self) -> PairView<'_> {
        PairView::new(self.a, self.b, &self.pair)
    }

    /// The mirrored pair record (B upstream), for building the reverse
    /// direction's [`PairData`].
    pub fn mirrored_pair(&self) -> IspPair {
        IspPair {
            isp_a: self.pair.isp_b,
            isp_b: self.pair.isp_a,
            interconnections: self
                .pair
                .interconnections
                .iter()
                .map(|x| nexit_topology::Interconnection {
                    pop_a: x.pop_b,
                    pop_b: x.pop_a,
                    length_km: x.length_km,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexit_topology::{GeneratorConfig, TopologyGenerator};

    #[test]
    fn pairdata_builds_for_generated_pair() {
        let u = TopologyGenerator::new(GeneratorConfig {
            num_isps: 10,
            num_mesh_isps: 0,
            seed: 3,
            ..GeneratorConfig::default()
        })
        .generate();
        let eligible = u.eligible_pairs(2, true);
        assert!(!eligible.is_empty());
        let pair = &u.pairs[eligible[0]];
        let data = PairData::build(
            &u.isps[pair.isp_a.index()],
            &u.isps[pair.isp_b.index()],
            pair.clone(),
            WorkloadModel::Gravity,
        );
        assert_eq!(data.flows.len(), data.a.num_pops() * data.b.num_pops());
        assert_eq!(data.default.len(), data.flows.len());
        assert!(data.flows.total_volume() > 0.0);
    }

    #[test]
    fn mirrored_pair_swaps_endpoints() {
        let u = TopologyGenerator::new(GeneratorConfig {
            num_isps: 10,
            num_mesh_isps: 0,
            seed: 3,
            ..GeneratorConfig::default()
        })
        .generate();
        let idx = u.eligible_pairs(2, true)[0];
        let pair = &u.pairs[idx];
        let data = PairData::build(
            &u.isps[pair.isp_a.index()],
            &u.isps[pair.isp_b.index()],
            pair.clone(),
            WorkloadModel::Identical,
        );
        let m = data.mirrored_pair();
        assert_eq!(m.isp_a, pair.isp_b);
        assert_eq!(m.isp_b, pair.isp_a);
        for (orig, mir) in pair.interconnections.iter().zip(&m.interconnections) {
            assert_eq!(orig.pop_a, mir.pop_b);
            assert_eq!(orig.pop_b, mir.pop_a);
        }
    }

    #[test]
    fn mirrored_and_reduced_builds_share_shortest_paths() {
        let u = TopologyGenerator::new(GeneratorConfig {
            num_isps: 10,
            num_mesh_isps: 0,
            seed: 3,
            ..GeneratorConfig::default()
        })
        .generate();
        let idx = u.eligible_pairs(2, true)[0];
        let pair = &u.pairs[idx];
        let fwd = PairData::build(
            &u.isps[pair.isp_a.index()],
            &u.isps[pair.isp_b.index()],
            pair.clone(),
            WorkloadModel::Identical,
        );
        let rev = fwd.build_mirrored(WorkloadModel::Identical);
        assert!(Arc::ptr_eq(&fwd.sp_up, &rev.sp_down), "fwd up == rev down");
        assert!(Arc::ptr_eq(&fwd.sp_down, &rev.sp_up), "fwd down == rev up");
        // The reverse data is identical to an uncached build.
        let fresh = PairData::build(
            &u.isps[pair.isp_b.index()],
            &u.isps[pair.isp_a.index()],
            fwd.mirrored_pair(),
            WorkloadModel::Identical,
        );
        assert_eq!(rev.default, fresh.default);
        assert_eq!(rev.flows.len(), fresh.flows.len());

        let reduced = fwd.build_reduced(fwd.pair.clone(), WorkloadModel::Identical);
        assert!(Arc::ptr_eq(&fwd.sp_up, &reduced.sp_up));
        assert!(Arc::ptr_eq(&fwd.sp_down, &reduced.sp_down));
    }

    #[test]
    fn smoke_config_is_small() {
        let c = ExpConfig::smoke();
        assert!(c.max_pairs.unwrap() <= 20);
        assert!(c.max_lp_variables <= 6_000);
    }
}
