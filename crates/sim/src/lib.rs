//! Experiment harness: reproduces every figure of the paper's evaluation.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`experiments::distance`] | Fig. 4a/4b (distance gains), Fig. 6 (flow-level view), §5.1 fraction claim |
//! | [`experiments::filters`] | Fig. 5 (flow-Pareto / flow-both-better) |
//! | [`experiments::bandwidth`] | Fig. 7 (MEL ratios), Fig. 8 (unilateral upstream) |
//! | [`experiments::diverse`] | Fig. 9 (different optimization criteria) |
//! | [`experiments::cheating`] | Fig. 10 (distance cheating), Fig. 11 (bandwidth cheating) |
//! | [`experiments::ablation`] | §5 robustness: preference-range sweep, group sweep, workload/capacity models |
//! | [`scenarios`] | Fig. 1 / Fig. 2 motivating topologies, Fig. 3 walk-through |
//! | [`destination`] | footnote-2 extension: destination-granularity negotiation |
//! | [`churn`] | beyond the paper: incremental re-negotiation under a live event feed |
//!
//! The `experiments` binary (`cargo run --release -p nexit-sim --bin
//! experiments -- all`) regenerates everything and prints the CDF series
//! the paper plots; `EXPERIMENTS.md` records paper-vs-measured.

pub mod cdf;
pub mod churn;
pub mod destination;
pub mod experiments;
pub mod pairdata;
pub mod parallel;
pub mod scenarios;
pub mod twoway;

pub use cdf::Cdf;
pub use pairdata::{ExpConfig, PairData};
pub use parallel::par_map;
