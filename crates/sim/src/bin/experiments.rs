//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments [all|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fraction|prange|groups|modes|models|dest|growth|broker|faults|churn]
//!             [--smoke] [--pairs N] [--seed N] [--threads N]
//!             [--objective distance|bandwidth|both]
//! ```
//!
//! `--objective` selects the negotiation objective of the `churn`
//! target (default `both`: the distance sweep then the bandwidth
//! sweep).
//!
//! `--smoke` runs a small subset for quick verification; the default runs
//! the full paper-scale universe (65 ISPs). Run with `--release`.
//!
//! Per-pair sweeps run on `--threads N` workers (or `NEXIT_THREADS`;
//! default: all available cores). Results are byte-identical for every
//! thread count — parallelism only changes wall-clock time.

use nexit_sim::churn;
use nexit_sim::experiments::{
    ablation, bandwidth, broker, cheating, distance, diverse, faults, filters,
};
use nexit_sim::ExpConfig;
use nexit_topology::{GeneratorConfig, TopologyGenerator, Universe};

fn usage() -> ! {
    eprintln!(
        "usage: experiments [all|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fraction|prange|groups|modes|models|dest|growth|broker|faults|churn] [--smoke] [--pairs N] [--seed N] [--threads N] [--objective distance|bandwidth|both]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target = String::from("all");
    let mut cfg = ExpConfig::default();
    let mut gen_cfg = GeneratorConfig::default();
    // Thread count: `--threads` beats `NEXIT_THREADS` beats auto (0).
    let mut threads: Option<usize> = std::env::var("NEXIT_THREADS")
        .ok()
        .and_then(|v| v.parse().ok());
    // Churn objectives: default runs the distance sweep then the
    // bandwidth sweep.
    let mut objectives = vec![churn::Objective::Distance, churn::Objective::Bandwidth];

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => {
                cfg = ExpConfig::smoke();
                gen_cfg.num_isps = 20;
                gen_cfg.num_mesh_isps = 2;
            }
            "--pairs" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                cfg.max_pairs = Some(n);
            }
            "--seed" => {
                let n: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                gen_cfg.seed = n;
                cfg.seed = n;
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                threads = Some(n);
            }
            "--objective" => {
                objectives = match it.next().map(String::as_str) {
                    Some("distance") => vec![churn::Objective::Distance],
                    Some("bandwidth") => vec![churn::Objective::Bandwidth],
                    Some("both") => {
                        vec![churn::Objective::Distance, churn::Objective::Bandwidth]
                    }
                    _ => usage(),
                };
            }
            name if !name.starts_with('-') => target = name.to_string(),
            _ => usage(),
        }
    }
    cfg.threads = threads.unwrap_or(0);

    const TARGETS: &[&str] = &[
        "all", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fraction",
        "prange", "groups", "modes", "models", "dest", "growth", "broker", "faults", "churn",
    ];
    // Targets `all` does NOT cover: they pin their own workloads or
    // universes and run only when named (see below).
    const NAMED_ONLY: &[&str] = &["broker", "faults", "churn"];
    if !TARGETS.contains(&target.as_str()) {
        eprintln!("unknown target `{target}`");
        usage();
    }

    // The broker target uses a synthetic session workload (no universe)
    // and runs only when named explicitly — not under `all`.
    if target == "broker" {
        let sizes: Vec<usize> = match cfg.max_pairs {
            Some(n) => vec![n],
            None => vec![1_000, 10_000],
        };
        for pairs in sizes {
            eprintln!(
                "running broker throughput + engine-equivalence ({pairs} pairs, {} worker(s)) ...",
                nexit_sim::parallel::resolve_threads(cfg.threads),
            );
            let r = broker::run(pairs, cfg.threads, cfg.seed);
            broker::report(&r);
            if r.mismatches > 0 {
                eprintln!("broker outcomes diverged from the engine!");
                std::process::exit(1);
            }
        }
        return;
    }

    // The faults target sweeps the broker's ARQ + degradation layer over
    // lossy links on real topology pairs; like `broker`, it runs only
    // when named explicitly and exits non-zero on any acceptance
    // violation (mismatched outcome, lost session, headline recovery
    // below 99%, or worker-count nondeterminism).
    if target == "faults" {
        let sessions = cfg.max_pairs.unwrap_or(1_000);
        eprintln!(
            "running fault-tolerance sweep ({sessions} headline sessions, {} worker(s)) ...",
            nexit_sim::parallel::resolve_threads(cfg.threads),
        );
        let r = faults::run(sessions, cfg.threads, cfg.seed);
        faults::report(&r);
        if !r.violations.is_empty() {
            eprintln!("fault-tolerance acceptance violated!");
            std::process::exit(1);
        }
        return;
    }

    // The churn target replays seeded event feeds through the
    // incremental re-negotiation driver on its own pinned universe;
    // like `broker` and `faults` it runs only when named explicitly and
    // exits non-zero on any divergence from the per-prefix cold
    // rebuild, nondeterminism across worker counts, or an
    // incremental-vs-cold latency-ratio regression.
    if target == "churn" {
        let pairs = cfg.max_pairs.unwrap_or(24);
        let events = if cfg.max_pairs.is_some() { 60 } else { 250 };
        let mut failed = false;
        for (i, &objective) in objectives.iter().enumerate() {
            eprintln!(
                "running churn sweep [{}] ({pairs} pairs x {events} events, {} worker(s)) ...",
                objective.name(),
                nexit_sim::parallel::resolve_threads(cfg.threads),
            );
            let r = churn::run(pairs, events, cfg.threads, cfg.seed, objective);
            churn::report(&r);
            if !r.violations.is_empty() {
                eprintln!("churn acceptance violated under {}!", objective.name());
                failed = true;
            }
            if i + 1 < objectives.len() {
                println!();
            }
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }

    if target == "all" {
        eprintln!(
            "note: `all` skips the named-only targets: {} (run each explicitly to cover it; \
             `churn` takes --objective distance|bandwidth|both)",
            NAMED_ONLY.join(", ")
        );
    }

    eprintln!(
        "generating universe: {} ISPs (seed {}) ...",
        gen_cfg.num_isps, gen_cfg.seed
    );
    let universe: Universe = TopologyGenerator::new(gen_cfg).generate();
    eprintln!(
        "universe ready: {} pairs, {} distance-eligible, {} bandwidth-eligible ({} sweep threads)",
        universe.pairs.len(),
        universe.eligible_pairs(2, true).len(),
        universe.eligible_pairs(3, false).len(),
        nexit_sim::parallel::resolve_threads(cfg.threads),
    );

    let want = |name: &str| target == "all" || target == name;

    if want("fig4") || want("fig6") || want("fraction") {
        eprintln!("running distance experiment (Figures 4, 6) ...");
        let results = distance::run(&universe, &cfg);
        distance::report(&results);
        println!();
    }
    if want("fig5") {
        eprintln!("running filter strategies (Figure 5) ...");
        let results = filters::run(&universe, &cfg);
        filters::report(&results);
        println!();
    }
    if want("fig7") || want("fig8") {
        eprintln!("running bandwidth experiment (Figures 7, 8) ...");
        let results = bandwidth::run(&universe, &cfg);
        bandwidth::report(&results);
        println!();
    }
    if want("fig9") {
        eprintln!("running diverse-criteria experiment (Figure 9) ...");
        let results = diverse::run(&universe, &cfg);
        diverse::report(&results);
        println!();
    }
    if want("fig10") {
        eprintln!("running distance cheating experiment (Figure 10) ...");
        let results = cheating::run_distance(&universe, &cfg);
        cheating::report_distance(&results);
        println!();
    }
    if want("fig11") {
        eprintln!("running bandwidth cheating experiment (Figure 11) ...");
        let results = cheating::run_bandwidth(&universe, &cfg);
        cheating::report_bandwidth(&results);
        println!();
    }
    if want("prange") {
        eprintln!("running preference-range sweep ...");
        let rows = ablation::preference_range_sweep(&universe, &cfg, &[1, 2, 5, 10, 20, 50]);
        ablation::report_prange(&rows);
        println!();
    }
    if want("groups") {
        eprintln!("running group-count sweep ...");
        let rows = ablation::group_sweep(&universe, &cfg, &[1, 2, 4, 8]);
        ablation::report_groups(&rows);
        println!();
    }
    if want("modes") {
        eprintln!("running protocol-mode ablation ...");
        let rows = ablation::mode_comparison(&universe, &cfg);
        ablation::report_modes(&rows);
        println!();
    }
    if want("dest") {
        eprintln!("running destination-granularity negotiation (footnote 2) ...");
        let results = nexit_sim::destination::run(&universe, &cfg);
        nexit_sim::destination::report(&results);
        println!();
    }
    if want("models") {
        eprintln!("running alternate-model grid ...");
        let rows = ablation::model_grid(&universe, &cfg);
        ablation::report_models(&rows);
        println!();
    }
    if want("growth") {
        eprintln!("running background-growth sweep (warm-started LP ladder) ...");
        let results = bandwidth::run_growth(&universe, &cfg, &[1.1, 1.25, 1.5, 2.0]);
        bandwidth::report_growth(&results);
        println!();
    }
}
